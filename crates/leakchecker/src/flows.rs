//! Transitive flows-out / flows-in relations and leak matching.
//!
//! From the abstract effect sets Ψ̃ (stores) and Ω̃ (loads) the detector
//! derives, per Definition 2 of the paper:
//!
//! * **flows-out** `s ▷*_g b` — an inside site `s` is reachable through a
//!   chain of inside-loop stores from an object saved in field `g` of an
//!   outside object `b` (the *closest* outside object in the chain);
//! * **flows-in** `s ◁*_g b` — `s` is retrieved back from `b.g` inside
//!   the loop (directly or as a member of the retrieved structure).
//!
//! A flows-out edge with no matching flows-in edge is a *redundant
//! reference*: the field keeps instances of `s` alive although the loop
//! never reads them back — the leak signature (Definition 3 plus the
//! Section 2 matching rule for `f̂`-classified sites).
//!
//! "Outside" bases are outside-allocated objects, the statics
//! pseudo-object, `⊤` bases (conservative), and — under thread modeling —
//! started `Thread` objects regardless of their own ERA.

use crate::parallel::parallel_map;
use leakchecker_effects::{EffectBase, EffectSummary, Era, TypeKey};
use leakchecker_ir::ids::{AllocSite, FieldId};
use leakchecker_ir::Program;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One outside edge a site escapes through: field `g` of outside base `b`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct OutsideEdge {
    /// The outside base (`None` encodes a `⊤` base).
    pub base: Option<TypeKey>,
    /// The field of the base holding the escaping structure.
    pub field: FieldId,
}

/// Matchable flows-in facts for one `(site, field)` pair: the set of
/// outside bases the site is read back through, collapsed so an
/// unmatched-edge probe is one map lookup instead of a scan over every
/// flows-in edge.
#[derive(Clone, Debug, Default)]
struct InMatch {
    /// A `⊤`-based read exists: matches any outside base.
    wildcard: bool,
    /// Concrete outside bases the site is read back from.
    bases: BTreeSet<TypeKey>,
}

/// The flow relations of one analyzed loop.
#[derive(Clone, Debug, Default)]
pub struct FlowRelations {
    /// Flows-out: per inside site, the outside edges its instances (or
    /// structures containing them) are saved through.
    pub flows_out: BTreeMap<AllocSite, BTreeSet<OutsideEdge>>,
    /// Flows-in: per inside site, the outside edges it is retrieved from.
    pub flows_in: BTreeMap<AllocSite, BTreeSet<OutsideEdge>>,
    /// Sites loaded back (from any persistent base) inside the loop —
    /// the edge-insensitive flow-back witness used for structure members.
    pub loaded_back: BTreeSet<AllocSite>,
    /// Containment among inside sites: `container → members` via
    /// inside-loop stores (used by pivot mode).
    pub contains: BTreeMap<AllocSite, BTreeSet<AllocSite>>,
    /// `(site, field)` index over `flows_in` used by
    /// [`FlowRelations::unmatched_edges`].
    in_index: BTreeMap<(AllocSite, FieldId), InMatch>,
}

/// Options for building the relations.
#[derive(Copy, Clone, Debug)]
pub struct FlowConfig {
    /// Apply the stronger flows-in condition to library-internal loads.
    pub library_modeling: bool,
    /// Treat started threads as outside objects.
    pub model_threads: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            library_modeling: true,
            model_threads: false,
        }
    }
}

/// Is this effect base an "outside object" for escape purposes?
fn is_outside_base(summary: &EffectSummary, config: FlowConfig, base: &EffectBase) -> bool {
    match base {
        EffectBase::Top => true,
        EffectBase::Type(t) => {
            if t.era == Era::Outside || t.key == TypeKey::Globals {
                return true;
            }
            config.model_threads && summary.started_threads.contains(&t.key)
        }
    }
}

/// An inside-site key, if the effect value is an inside site.
fn inside_site(summary: &EffectSummary, value_key: TypeKey) -> Option<AllocSite> {
    match value_key {
        TypeKey::Site(s) if summary.inside_sites.contains(&s) => Some(s),
        _ => None,
    }
}

/// Builds the flow relations from an effect summary.
///
/// `jobs` bounds the worker threads used for the dense closure and its
/// decode; `0` means machine width and `1` runs fully inline. The
/// resulting relations are identical at any width — the closure is a
/// unique fixpoint and the parallel schedule only changes who computes
/// which row.
pub fn build(
    program: &Program,
    summary: &EffectSummary,
    config: FlowConfig,
    jobs: usize,
) -> FlowRelations {
    let mut rel = FlowRelations::default();

    // Direct outside escapes and inside containment edges.
    let mut direct_out: BTreeMap<AllocSite, BTreeSet<OutsideEdge>> = BTreeMap::new();
    for e in summary.stores.iter().filter(|e| e.inside_loop) {
        let Some(value) = inside_site(summary, e.value.key) else {
            continue;
        };
        if is_outside_base(summary, config, &e.base) {
            direct_out.entry(value).or_default().insert(OutsideEdge {
                base: e.base.key(),
                field: e.field,
            });
        } else if let Some(TypeKey::Site(base_site)) = e.base.key() {
            if summary.inside_sites.contains(&base_site) {
                rel.contains.entry(base_site).or_default().insert(value);
            }
        }
    }

    // Transitive flows-out: members of an escaping structure escape
    // through the same outside edge (r ⊐* o ▷_g b  ⟹  r ▷*_g b).
    //
    // The distinct outside edges get dense ids and each contains-graph
    // node gets a bitset row over them, so a closure step ORs words
    // instead of cloning and merging `BTreeSet`s. The closure itself is
    // computed on the SCC condensation of the contains graph: every site
    // in a cycle provably ends up with the same row (each reaches the
    // others), so one row per SCC suffices, and the condensation is a
    // DAG whose nodes can be processed in topological *waves* — all
    // predecessors of a wave live in strictly earlier waves, so the SCCs
    // within a wave are data-independent and fan out across workers.
    debug_assert!(
        direct_out
            .keys()
            .all(|s| s.index() < program.allocs().len()),
        "effect summary names an alloc site outside the program"
    );
    let mut edge_of_id: Vec<OutsideEdge> = Vec::new();
    let mut id_of_edge: BTreeMap<&OutsideEdge, usize> = BTreeMap::new();
    for edge in direct_out.values().flatten() {
        id_of_edge.entry(edge).or_insert_with(|| {
            edge_of_id.push(edge.clone());
            edge_of_id.len() - 1
        });
    }
    let words = edge_of_id.len().div_ceil(64);

    // Sites touched by the contains graph (as container or member). A
    // site outside it can never gain edges transitively: its final
    // flows-out is exactly its direct set.
    let nodes: Vec<AllocSite> = {
        let mut set: BTreeSet<AllocSite> = rel.contains.keys().copied().collect();
        set.extend(rel.contains.values().flatten().copied());
        set.into_iter().collect()
    };
    let node_id: BTreeMap<AllocSite, usize> =
        nodes.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    for (&site, edges) in &direct_out {
        if !node_id.contains_key(&site) {
            rel.flows_out.insert(site, edges.clone());
        }
    }

    if !nodes.is_empty() && words > 0 {
        // Direct rows, indexed by contains-graph node id.
        let mut direct_rows: Vec<Vec<u64>> = vec![vec![0u64; words]; nodes.len()];
        for (site, edges) in &direct_out {
            let Some(&n) = node_id.get(site) else {
                continue;
            };
            for edge in edges {
                let id = id_of_edge[edge];
                direct_rows[n][id / 64] |= 1u64 << (id % 64);
            }
        }
        let adj: Vec<Vec<usize>> = nodes
            .iter()
            .map(|site| {
                rel.contains
                    .get(site)
                    .into_iter()
                    .flatten()
                    .map(|m| node_id[m])
                    .collect()
            })
            .collect();

        let scc = condense(&adj);

        // Predecessor SCCs along contains edges (container SCC precedes
        // member SCC), then longest-path-from-roots levels: every
        // predecessor of an SCC sits in a strictly earlier level.
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); scc.members.len()];
        for (u, succs) in adj.iter().enumerate() {
            for &v in succs {
                let (su, sv) = (scc.of[u], scc.of[v]);
                if su != sv {
                    preds[sv].push(su);
                }
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        // Tarjan emits successors before predecessors, so reverse
        // emission order is topological: predecessors resolve first.
        let mut level = vec![0usize; scc.members.len()];
        let mut depth = 0;
        for s in (0..scc.members.len()).rev() {
            level[s] = preds[s].iter().map(|&p| level[p] + 1).max().unwrap_or(0);
            depth = depth.max(level[s]);
        }
        let mut waves: Vec<Vec<usize>> = vec![Vec::new(); depth + 1];
        for s in (0..scc.members.len()).rev() {
            waves[level[s]].push(s);
        }

        // scc_row(S) = OR(direct rows of S's members) | OR(scc_row(P))
        // over predecessor SCCs P — the unique closure fixpoint, so the
        // result is identical at any `jobs` width.
        let mut scc_rows: Vec<Vec<u64>> = vec![Vec::new(); scc.members.len()];
        for wave in &waves {
            let computed = parallel_map(jobs, wave.clone(), |s| {
                let mut row = vec![0u64; words];
                for &m in &scc.members[s] {
                    for (d, &b) in row.iter_mut().zip(&direct_rows[m]) {
                        *d |= b;
                    }
                }
                for &p in &preds[s] {
                    for (d, &b) in row.iter_mut().zip(&scc_rows[p]) {
                        *d |= b;
                    }
                }
                row
            });
            for (&s, row) in wave.iter().zip(computed) {
                scc_rows[s] = row;
            }
        }

        // Decode once per SCC (members share the row bit-for-bit), in
        // parallel across SCCs, then fan the decoded set out to members.
        let decoded = parallel_map(jobs, (0..scc_rows.len()).collect(), |s| {
            let mut edges = BTreeSet::new();
            for (word, &bits) in scc_rows[s].iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let id = word * 64 + bits.trailing_zeros() as usize;
                    // The kernel only ORs rows together, so no decoded id
                    // can exceed the interned edge space — unless a row
                    // was sized or indexed wrong, in which case a stray
                    // high bit in the last word would otherwise surface
                    // as a bare index-out-of-bounds far from the cause.
                    // The edge count is not a multiple of 64 in general,
                    // so the last word legitimately has unused high bits
                    // that must stay zero.
                    assert!(
                        id < edge_of_id.len(),
                        "flows-out bitset decode: bit {id} set in word {word} of SCC {s}, \
                         but only {} outside edges were interned",
                        edge_of_id.len()
                    );
                    edges.insert(edge_of_id[id].clone());
                    bits &= bits - 1;
                }
            }
            edges
        });
        for (n, &site) in nodes.iter().enumerate() {
            let edges = &decoded[scc.of[n]];
            if !edges.is_empty() {
                rel.flows_out.insert(site, edges.clone());
            }
        }
    }

    // Flows-in: loads of inside sites from outside bases, with the
    // stronger library condition.
    for e in summary.loads.iter().filter(|e| e.inside_loop) {
        let Some(value) = inside_site(summary, e.value.key) else {
            continue;
        };
        if config.library_modeling
            && e.in_library
            && !summary.returned_from_library.contains(&e.value.key)
        {
            // Library-internal read never surfaced to application code
            // (e.g. HashMap.put probing): not a flow back.
            continue;
        }
        if is_outside_base(summary, config, &e.base) {
            let base = e.base.key();
            rel.flows_in.entry(value).or_default().insert(OutsideEdge {
                base,
                field: e.field,
            });
            let index = rel.in_index.entry((value, e.field)).or_default();
            match base {
                None => index.wildcard = true,
                Some(key) => {
                    index.bases.insert(key);
                }
            }
        }
        // Any persistent-base load marks the value as loaded back.
        let persists = match &e.base {
            EffectBase::Top => true,
            EffectBase::Type(t) => t.era.persists(),
        };
        if persists {
            rel.loaded_back.insert(value);
        }
    }

    rel
}

/// The strongly connected components of a directed graph.
struct Condensation {
    /// SCC id of each node, in Tarjan emission order (every SCC is
    /// emitted after all SCCs it has edges into).
    of: Vec<usize>,
    /// Member nodes of each SCC.
    members: Vec<Vec<usize>>,
}

/// Iterative Tarjan over an adjacency list. The contains graph of a
/// generated 1M-statement program nests thousands deep, so the textbook
/// recursive formulation would overflow the stack; the DFS state lives
/// in an explicit `(node, next edge)` stack instead.
fn condense(adj: &[Vec<usize>]) -> Condensation {
    const UNVISITED: usize = usize::MAX;
    let n = adj.len();
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut of = vec![UNVISITED; n];
    let mut members: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    let mut dfs: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        dfs.push((root, 0));
        while let Some(&(v, ei)) = dfs.last() {
            if ei == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(ei) {
                dfs.last_mut().expect("nonempty").1 += 1;
                if index[w] == UNVISITED {
                    dfs.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                dfs.pop();
                if let Some(&(parent, _)) = dfs.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let id = members.len();
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC root still on stack");
                        on_stack[w] = false;
                        of[w] = id;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    members.push(scc);
                }
            }
        }
    }
    Condensation { of, members }
}

impl FlowRelations {
    /// The flows-out edges of `site` that have no matching flows-in edge.
    ///
    /// Matching follows Section 2: the edge's field must agree and the
    /// outside bases must may-alias — in the site abstraction, carry the
    /// same key. A `⊤` base matches anything (conservative: it *may* be
    /// the same object, so the flows-in suppresses the report).
    ///
    /// Borrows from the relation: use `.next().is_some()` for the
    /// candidate test and `.cloned().collect()` only when edges must be
    /// kept.
    pub fn unmatched_edges(&self, site: AllocSite) -> impl Iterator<Item = &OutsideEdge> + '_ {
        self.flows_out
            .get(&site)
            .into_iter()
            .flatten()
            .filter(move |edge| {
                let matched =
                    self.in_index
                        .get(&(site, edge.field))
                        .is_some_and(|index| match edge.base {
                            // A ⊤ out-base may alias any in-base on the field.
                            None => true,
                            Some(base) => index.wildcard || index.bases.contains(&base),
                        });
                !matched
            })
    }

    /// Does `site` escape at all (transitively reach an outside edge)?
    pub fn escapes(&self, site: AllocSite) -> bool {
        self.flows_out
            .get(&site)
            .is_some_and(|edges| !edges.is_empty())
    }

    /// All sites contained (transitively) in `site`'s structure.
    pub fn members_of(&self, site: AllocSite) -> BTreeSet<AllocSite> {
        let mut out = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(site);
        while let Some(s) = queue.pop_front() {
            if let Some(members) = self.contains.get(&s) {
                for &m in members {
                    if m != site && out.insert(m) {
                        queue.push_back(m);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::{Algorithm, CallGraph};
    use leakchecker_effects::{analyze, EffectConfig};
    use leakchecker_frontend::compile;

    fn relations(src: &str, config: FlowConfig) -> (leakchecker_ir::Program, FlowRelations) {
        let unit = compile(src).unwrap();
        let cg = CallGraph::build(&unit.program, Algorithm::Rta);
        let summary = analyze(
            &unit.program,
            &cg,
            unit.checked_loops[0],
            EffectConfig {
                model_threads: config.model_threads,
                ..EffectConfig::default()
            },
        );
        let rel = build(&unit.program, &summary, config, 1);
        (unit.program, rel)
    }

    fn site_of(p: &leakchecker_ir::Program, describe: &str) -> AllocSite {
        p.allocs()
            .iter()
            .enumerate()
            .find(|(_, a)| a.describe == describe)
            .map(|(i, _)| AllocSite::from_index(i))
            .unwrap()
    }

    #[test]
    fn unmatched_edge_for_canonical_leak() {
        let (p, rel) = relations(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item it = new Item();
                   h.item = it;
                 }
               }
             }",
            FlowConfig::default(),
        );
        let item = site_of(&p, "new Item");
        assert!(rel.escapes(item));
        assert_eq!(rel.unmatched_edges(item).count(), 1);
    }

    #[test]
    fn matched_edge_for_carried_over_object() {
        let (p, rel) = relations(
            "class Order { }
             class Tx { Order curr; }
             class Main {
               static void main() {
                 Tx t = new Tx();
                 @check while (nondet()) {
                   Order prev = t.curr;
                   Order o = new Order();
                   t.curr = o;
                 }
               }
             }",
            FlowConfig::default(),
        );
        let order = site_of(&p, "new Order");
        assert!(rel.escapes(order));
        assert!(rel.unmatched_edges(order).next().is_none());
        assert!(rel.loaded_back.contains(&order));
    }

    #[test]
    fn figure1_two_edges_one_matched() {
        // The Figure 1 shape: Order escapes through Tx.curr (read back)
        // AND through an order array (never read back). The array edge
        // stays unmatched.
        let (p, rel) = relations(
            "class Order { }
             class Tx {
               Order curr;
               Order[] orders = new Order[64];
               int n;
               void process(Order o) {
                 this.curr = o;
                 Order[] arr = this.orders;
                 arr[this.n] = o;
                 this.n = this.n + 1;
               }
               void display() {
                 Order o = this.curr;
                 if (o != null) { this.curr = null; }
               }
             }
             class Main {
               static void main() {
                 Tx t = new Tx();
                 @check while (nondet()) {
                   t.display();
                   Order o = new Order();
                   t.process(o);
                 }
               }
             }",
            FlowConfig::default(),
        );
        let order = site_of(&p, "new Order");
        let out_edges = rel.flows_out.get(&order).unwrap();
        assert_eq!(out_edges.len(), 2, "{out_edges:?}");
        let unmatched: Vec<_> = rel.unmatched_edges(order).collect();
        assert_eq!(unmatched.len(), 1, "{unmatched:?}");
        let f = unmatched[0].field;
        assert_eq!(p.field(f).name, "elem", "the redundant edge is the array");
    }

    #[test]
    fn transitive_members_escape_through_root_edge() {
        let (p, rel) = relations(
            "class Item { }
             class Node { Item item; }
             class Holder { Node node; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Node n = new Node();
                   Item it = new Item();
                   n.item = it;
                   h.node = n;
                 }
               }
             }",
            FlowConfig::default(),
        );
        let node = site_of(&p, "new Node");
        let item = site_of(&p, "new Item");
        assert!(rel.escapes(node));
        assert!(rel.escapes(item), "member inherits the outside edge");
        assert!(rel.members_of(node).contains(&item));
        assert_eq!(rel.unmatched_edges(item).count(), 1);
    }

    #[test]
    fn library_loads_do_not_count_without_return() {
        // The library container reads its slots internally (put probing)
        // but never returns them: no flows-in.
        let src = "
             library class Bucket {
               Item slot;
               void put(Item it) {
                 Item probe = this.slot;
                 this.slot = it;
               }
             }
             class Item { }
             class Main {
               static void main() {
                 Bucket b = new Bucket();
                 @check while (nondet()) {
                   Item it = new Item();
                   b.put(it);
                 }
               }
             }";
        let (p, rel) = relations(src, FlowConfig::default());
        let item = site_of(&p, "new Item");
        assert_eq!(
            rel.unmatched_edges(item).count(),
            1,
            "library-internal probe read must not mask the leak"
        );
        // Without library modeling the probe read masks it.
        let (p2, rel2) = relations(
            src,
            FlowConfig {
                library_modeling: false,
                ..FlowConfig::default()
            },
        );
        let item2 = site_of(&p2, "new Item");
        assert!(rel2.unmatched_edges(item2).next().is_none());
    }

    #[test]
    fn library_loads_count_when_returned() {
        let (p, rel) = relations(
            "library class Bucket {
               Item slot;
               void put(Item it) { this.slot = it; }
               Item get() { Item v = this.slot; return v; }
             }
             class Item { }
             class Main {
               static void main() {
                 Bucket b = new Bucket();
                 @check while (nondet()) {
                   Item prev = b.get();
                   Item it = new Item();
                   b.put(it);
                 }
               }
             }",
            FlowConfig::default(),
        );
        let item = site_of(&p, "new Item");
        assert!(
            rel.unmatched_edges(item).next().is_none(),
            "returned library load is a proper flows-in"
        );
    }

    #[test]
    fn thread_modeling_adds_outside_edges() {
        let src = "
             library class Thread {
               void start() { this.run(); }
               void run() { }
             }
             class Worker extends Thread {
               Item captured;
               void run() { }
             }
             class Item { }
             class Main {
               static void main() {
                 @check while (nondet()) {
                   Worker w = new Worker();
                   Item it = new Item();
                   w.captured = it;
                   w.start();
                 }
               }
             }";
        let (p, rel) = relations(
            src,
            FlowConfig {
                model_threads: true,
                ..FlowConfig::default()
            },
        );
        let item = site_of(&p, "new Item");
        assert!(rel.escapes(item), "captured by a started thread");
        // Without thread modeling there is no escape at all.
        let (p2, rel2) = relations(src, FlowConfig::default());
        let item2 = site_of(&p2, "new Item");
        assert!(!rel2.escapes(item2));
    }

    // ----- in-index edge cases over hand-crafted summaries -----
    //
    // `EffectSummary` fields are public, so the `(site, field)` matching
    // index can be probed directly with exactly the effect combinations
    // the end-to-end programs above cannot isolate.

    use leakchecker_effects::{AbsEffect, AbsType};

    /// A program whose only purpose is to own four allocation sites for
    /// the hand-crafted summaries below.
    fn four_site_program() -> leakchecker_ir::Program {
        compile(
            "class A { A f; A g; }
             class Main {
                 static void main() {
                     A a = new A();
                     A b = new A();
                     A c = new A();
                     A d = new A();
                     @check while (nondet()) { int x = 0; }
                 }
             }",
        )
        .unwrap()
        .program
    }

    fn inside(site: u32) -> AbsType {
        AbsType::site(AllocSite(site), Era::Current)
    }

    fn outside_base(site: u32) -> EffectBase {
        EffectBase::Type(AbsType::site(AllocSite(site), Era::Outside))
    }

    fn eff(value: AbsType, field: u32, base: EffectBase, in_library: bool) -> AbsEffect {
        AbsEffect {
            value,
            field: FieldId(field),
            base,
            inside_loop: true,
            in_library,
        }
    }

    #[test]
    fn empty_flows_out_yields_no_unmatched_edges() {
        // A site that is only ever loaded: no flows-out entry at all.
        let program = four_site_program();
        let mut summary = EffectSummary::default();
        summary.inside_sites.insert(AllocSite(0));
        summary
            .loads
            .insert(eff(inside(0), 0, outside_base(1), false));
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        assert!(!rel.escapes(AllocSite(0)));
        assert_eq!(rel.unmatched_edges(AllocSite(0)).count(), 0);
        assert!(rel.flows_in.contains_key(&AllocSite(0)));
    }

    #[test]
    fn duplicate_out_edges_to_same_field_match_independently() {
        // The site escapes through field f of two distinct outside
        // bases; a flows-in exists only for the first. The second edge
        // must stay unmatched, and storing the same edge twice must not
        // double it.
        let program = four_site_program();
        let mut summary = EffectSummary::default();
        summary.inside_sites.insert(AllocSite(0));
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(1), false));
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(1), false));
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(2), false));
        summary
            .loads
            .insert(eff(inside(0), 0, outside_base(1), false));
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        assert_eq!(rel.flows_out[&AllocSite(0)].len(), 2, "edges deduplicate");
        let unmatched: Vec<&OutsideEdge> = rel.unmatched_edges(AllocSite(0)).collect();
        assert_eq!(unmatched.len(), 1);
        assert_eq!(
            unmatched[0].base,
            Some(TypeKey::Site(AllocSite(2))),
            "only the base without a flows-in stays unmatched"
        );
    }

    #[test]
    fn flows_in_with_no_matching_flows_out_does_not_suppress() {
        // The site escapes through field f but is read back through a
        // different field g: the in-index entry for (site, g) must not
        // satisfy the (site, f) probe.
        let program = four_site_program();
        let mut summary = EffectSummary::default();
        summary.inside_sites.insert(AllocSite(0));
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(1), false));
        summary
            .loads
            .insert(eff(inside(0), 1, outside_base(1), false));
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        assert!(rel.flows_in.contains_key(&AllocSite(0)), "flows-in exists");
        assert_eq!(
            rel.unmatched_edges(AllocSite(0)).count(),
            1,
            "a flows-in on another field is not a match"
        );
    }

    #[test]
    fn library_return_path_supplies_the_only_match() {
        // The only read of the site happens inside library code. With
        // the value recorded as returned to application code the edge
        // is matched; with the return removed the same summary leaves
        // the edge unmatched.
        let program = four_site_program();
        let mut summary = EffectSummary::default();
        summary.inside_sites.insert(AllocSite(0));
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(1), false));
        summary
            .loads
            .insert(eff(inside(0), 0, outside_base(1), true));
        summary
            .returned_from_library
            .insert(TypeKey::Site(AllocSite(0)));
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        assert_eq!(
            rel.unmatched_edges(AllocSite(0)).count(),
            0,
            "returned library load is the match"
        );

        summary.returned_from_library.clear();
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        assert_eq!(
            rel.unmatched_edges(AllocSite(0)).count(),
            1,
            "without the return the library probe must not match"
        );
    }

    fn inside_base(site: u32) -> EffectBase {
        EffectBase::Type(AbsType::site(AllocSite(site), Era::Current))
    }

    #[test]
    fn cyclic_containment_shares_every_edge() {
        // Containment cycle 0 → 1 → 2 → 0 with a single direct escape on
        // site 0: the SCC collapses the cycle, and all three sites must
        // end up with the same flows-out row.
        let program = four_site_program();
        let mut summary = EffectSummary::default();
        for s in 0..3 {
            summary.inside_sites.insert(AllocSite(s));
        }
        summary
            .stores
            .insert(eff(inside(0), 0, outside_base(3), false));
        summary
            .stores
            .insert(eff(inside(1), 1, inside_base(0), false));
        summary
            .stores
            .insert(eff(inside(2), 1, inside_base(1), false));
        summary
            .stores
            .insert(eff(inside(0), 1, inside_base(2), false));
        let rel = build(&program, &summary, FlowConfig::default(), 1);
        for s in 0..3 {
            assert_eq!(
                rel.flows_out.get(&AllocSite(s)).map_or(0, BTreeSet::len),
                1,
                "site {s} must inherit the cycle's escape edge"
            );
        }
        assert!(!rel.flows_out.contains_key(&AllocSite(3)));
    }

    #[test]
    fn closure_is_identical_at_any_jobs_width() {
        // The SCC waves fan out across workers; the fixpoint is unique,
        // so every width must produce the same relations.
        let src = edge_fanout_source(70);
        let baseline = relations(&src, FlowConfig::default()).1;
        for jobs in [2usize, 4, 8] {
            let unit = compile(&src).unwrap();
            let cg = CallGraph::build(&unit.program, Algorithm::Rta);
            let summary = analyze(
                &unit.program,
                &cg,
                unit.checked_loops[0],
                EffectConfig::default(),
            );
            let rel = build(&unit.program, &summary, FlowConfig::default(), jobs);
            assert_eq!(rel.flows_out, baseline.flows_out, "jobs={jobs}");
            assert_eq!(rel.flows_in, baseline.flows_in, "jobs={jobs}");
            assert_eq!(rel.contains, baseline.contains, "jobs={jobs}");
        }
    }

    /// A leak escaping through `n` distinct static fields, with the
    /// escaping object also held by an inside container so the bitset
    /// kernel has to propagate the full row transitively.
    fn edge_fanout_source(n: usize) -> String {
        let mut fields = String::new();
        let mut stores = String::new();
        for i in 0..n {
            fields.push_str(&format!(" static Box f{i};"));
            stores.push_str(&format!(" G.f{i} = b;"));
        }
        format!(
            "class Item {{ }}
             class Box {{ Item item; }}
             class G {{{fields} }}
             class Main {{
               static void main() {{
                 @check while (nondet()) {{
                   Box b = new Box();
                   Item it = new Item();
                   b.item = it;
                   {stores}
                 }}
               }}
             }}"
        )
    }

    /// Exercises the dense-row decode at the last bit of the last word:
    /// with the edge count ≡ 0 (mod 64) the top bit of the final word
    /// is a real edge id, and with count ≢ 0 (mod 64) the final word
    /// has unused high bits that must decode to nothing. Either shape
    /// would have tripped an unchecked `edge_of_id[id]` if the kernel
    /// sized rows wrong.
    #[test]
    fn bitset_decode_survives_word_boundary_edge_counts() {
        for n in [63usize, 64, 65] {
            let (p, rel) = relations(&edge_fanout_source(n), FlowConfig::default());
            let boxed = site_of(&p, "new Box");
            let item = site_of(&p, "new Item");
            assert_eq!(
                rel.flows_out.get(&boxed).map_or(0, BTreeSet::len),
                n,
                "{n} static stores must intern {n} distinct outside edges"
            );
            assert_eq!(
                rel.flows_out.get(&item).map_or(0, BTreeSet::len),
                n,
                "contained member must inherit all {n} edges transitively"
            );
            assert_eq!(rel.unmatched_edges(boxed).count(), n);
        }
    }
}
