//! The [`Program`] container and its entity tables.

use crate::ids::{AllocSite, CallSite, ClassId, FieldId, LocalId, LoopId, MethodId};
use crate::stmt::{SiteLabel, Stmt};
use crate::types::Type;
use std::collections::HashMap;

/// A class declaration.
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name, unique within the program.
    pub name: String,
    /// Direct superclass; `None` only for the root class `Object`.
    pub superclass: Option<ClassId>,
    /// Instance and static fields declared directly by this class.
    pub fields: Vec<FieldId>,
    /// Methods declared directly by this class.
    pub methods: Vec<MethodId>,
    /// Marks standard-library classes. The detector applies the stronger
    /// flows-in condition to heap reads inside library code: a load counts
    /// as a flow back into the loop only if the loaded object is returned
    /// to application code (paper Section 4, "Flow into Library Methods").
    pub is_library: bool,
}

/// A field declaration (instance or static).
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declaring class; `None` only for the array-element pseudo-field.
    pub owner: Option<ClassId>,
    /// Declared type.
    pub ty: Type,
    /// `true` for `static` fields, which live in the global store.
    pub is_static: bool,
}

/// A local variable slot.
#[derive(Clone, Debug)]
pub struct Local {
    /// Source-level name (compiler temporaries are named `$tN`).
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A method declaration with its body.
#[derive(Clone, Debug)]
pub struct Method {
    /// Method name; constructors are named `<init>`.
    pub name: String,
    /// Declaring class.
    pub owner: ClassId,
    /// `true` for `static` methods (no `this`).
    pub is_static: bool,
    /// Number of declared parameters (excluding `this`).
    pub param_count: usize,
    /// Return type.
    pub ret_ty: Type,
    /// All local slots. For instance methods slot 0 is `this`; parameters
    /// occupy the next `param_count` slots.
    pub locals: Vec<Local>,
    /// Structured statement body.
    pub body: Vec<Stmt>,
}

impl Method {
    /// Returns the local slot of `this`, or `None` for static methods.
    pub fn this_local(&self) -> Option<LocalId> {
        if self.is_static {
            None
        } else {
            Some(LocalId(0))
        }
    }

    /// Returns the local slot of the `i`-th declared parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count`.
    pub fn param_local(&self, i: usize) -> LocalId {
        assert!(i < self.param_count, "parameter index out of range");
        let offset = if self.is_static { 0 } else { 1 };
        LocalId::from_index(offset + i)
    }

    /// Returns the local slots of all declared parameters, in order.
    pub fn param_locals(&self) -> Vec<LocalId> {
        (0..self.param_count).map(|i| self.param_local(i)).collect()
    }
}

/// Metadata about an allocation site.
#[derive(Clone, Debug)]
pub struct AllocInfo {
    /// The method containing the `new` statement.
    pub method: MethodId,
    /// The allocated type (class reference or array).
    pub ty: Type,
    /// Ground-truth label from the subject program, if any.
    pub label: SiteLabel,
    /// Optional human-readable description (e.g. `"new Order"`).
    pub describe: String,
}

/// Metadata about a call site.
#[derive(Clone, Debug)]
pub struct CallInfo {
    /// The method containing the call.
    pub method: MethodId,
}

/// Metadata about a structured loop.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The method whose body contains the loop.
    pub method: MethodId,
    /// `true` for artificial loops synthesized around a checkable region
    /// (paper Section 1: a repeatedly-executed code region is checked as
    /// the body of an artificial loop).
    pub synthetic: bool,
}

/// A whole IR program: classes, fields, methods and site tables.
///
/// Programs are immutable once built (via
/// [`ProgramBuilder`](crate::builder::ProgramBuilder) or the frontend);
/// analyses treat them as shared read-only input.
#[derive(Clone, Debug, Default)]
pub struct Program {
    classes: Vec<Class>,
    fields: Vec<Field>,
    methods: Vec<Method>,
    allocs: Vec<AllocInfo>,
    calls: Vec<CallInfo>,
    loops: Vec<LoopInfo>,
    class_by_name: HashMap<String, ClassId>,
    entry: Option<MethodId>,
}

impl Program {
    /// Creates an empty program containing only the root class `Object`
    /// and the array-element pseudo-field.
    pub fn new() -> Self {
        let mut p = Program::default();
        p.fields.push(Field {
            name: "elem".to_string(),
            owner: None,
            ty: Type::Ref(ClassId(0)),
            is_static: false,
        });
        let object = p.push_class(Class {
            name: "Object".to_string(),
            superclass: None,
            fields: Vec::new(),
            methods: Vec::new(),
            is_library: true,
        });
        debug_assert_eq!(object, ClassId(0));
        p
    }

    /// The id of the root class `Object`.
    pub fn object_class(&self) -> ClassId {
        ClassId(0)
    }

    /// All classes, indexable by [`ClassId`].
    pub fn classes(&self) -> &[Class] {
        &self.classes
    }

    /// All fields, indexable by [`FieldId`].
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// All methods, indexable by [`MethodId`].
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// All allocation sites, indexable by [`AllocSite`].
    pub fn allocs(&self) -> &[AllocInfo] {
        &self.allocs
    }

    /// All call sites, indexable by [`CallSite`].
    pub fn calls(&self) -> &[CallInfo] {
        &self.calls
    }

    /// All loops, indexable by [`LoopId`].
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Looks up a class.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Looks up a field.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Looks up a method.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Looks up allocation-site metadata.
    pub fn alloc(&self, id: AllocSite) -> &AllocInfo {
        &self.allocs[id.index()]
    }

    /// Looks up call-site metadata.
    pub fn call(&self, id: CallSite) -> &CallInfo {
        &self.calls[id.index()]
    }

    /// Looks up loop metadata.
    pub fn loop_info(&self, id: LoopId) -> &LoopInfo {
        &self.loops[id.index()]
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_by_name.get(name).copied()
    }

    /// Finds a method declared *directly* on `class` by name.
    pub fn method_on(&self, class: ClassId, name: &str) -> Option<MethodId> {
        self.classes[class.index()]
            .methods
            .iter()
            .copied()
            .find(|&m| self.methods[m.index()].name == name)
    }

    /// Finds a method by `"Class.name"` path.
    pub fn method_by_path(&self, path: &str) -> Option<MethodId> {
        let (class, name) = path.split_once('.')?;
        self.method_on(self.class_by_name(class)?, name)
    }

    /// Finds a field declared directly on `class` by name.
    pub fn field_on(&self, class: ClassId, name: &str) -> Option<FieldId> {
        self.classes[class.index()]
            .fields
            .iter()
            .copied()
            .find(|&f| self.fields[f.index()].name == name)
    }

    /// Resolves a field by name on `class` or any superclass.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(f) = self.field_on(c, name) {
                return Some(f);
            }
            cur = self.classes[c.index()].superclass;
        }
        None
    }

    /// Resolves a method by name on `class` or any superclass
    /// (the statically visible declaration).
    pub fn resolve_method(&self, class: ClassId, name: &str) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(m) = self.method_on(c, name) {
                return Some(m);
            }
            cur = self.classes[c.index()].superclass;
        }
        None
    }

    /// Returns `true` if `sub` equals `sup` or transitively extends it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c.index()].superclass;
        }
        false
    }

    /// Iterates over `class` and all of its transitive superclasses,
    /// starting at `class` itself.
    pub fn ancestry(&self, class: ClassId) -> Ancestry<'_> {
        Ancestry {
            program: self,
            next: Some(class),
        }
    }

    /// The program entry point (`Main.main`), if one was designated.
    pub fn entry(&self) -> Option<MethodId> {
        self.entry
    }

    /// Designates the program entry point.
    pub fn set_entry(&mut self, method: MethodId) {
        self.entry = Some(method);
    }

    /// Returns `true` if the method belongs to a library class.
    pub fn is_library_method(&self, method: MethodId) -> bool {
        self.class(self.method(method).owner).is_library
    }

    /// Fully-qualified `Class.method` name for diagnostics.
    pub fn qualified_name(&self, method: MethodId) -> String {
        let m = self.method(method);
        format!("{}.{}", self.class(m.owner).name, m.name)
    }

    /// Human-readable name of a field (`Class.field` or `elem`).
    pub fn field_name(&self, field: FieldId) -> String {
        let f = self.field(field);
        match f.owner {
            Some(owner) => format!("{}.{}", self.class(owner).name, f.name),
            None => f.name.clone(),
        }
    }

    // ---- mutation API used by the builder / frontend ----

    pub(crate) fn push_class(&mut self, class: Class) -> ClassId {
        let id = ClassId::from_index(self.classes.len());
        self.class_by_name.insert(class.name.clone(), id);
        self.classes.push(class);
        id
    }

    pub(crate) fn push_field(&mut self, field: Field) -> FieldId {
        let id = FieldId::from_index(self.fields.len());
        if let Some(owner) = field.owner {
            self.classes[owner.index()].fields.push(id);
        }
        self.fields.push(field);
        id
    }

    pub(crate) fn push_method(&mut self, method: Method) -> MethodId {
        let id = MethodId::from_index(self.methods.len());
        self.classes[method.owner.index()].methods.push(id);
        self.methods.push(method);
        id
    }

    pub(crate) fn push_alloc(&mut self, info: AllocInfo) -> AllocSite {
        let id = AllocSite::from_index(self.allocs.len());
        self.allocs.push(info);
        id
    }

    pub(crate) fn push_call(&mut self, info: CallInfo) -> CallSite {
        let id = CallSite::from_index(self.calls.len());
        self.calls.push(info);
        id
    }

    pub(crate) fn push_loop(&mut self, info: LoopInfo) -> LoopId {
        let id = LoopId::from_index(self.loops.len());
        self.loops.push(info);
        id
    }

    pub(crate) fn class_mut(&mut self, id: ClassId) -> &mut Class {
        &mut self.classes[id.index()]
    }

    pub(crate) fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Total number of simple (non-control) statements across all method
    /// bodies — the `Stmts` column of Table 1 counts Jimple statements the
    /// same way.
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => 1 + count(then_branch) + count(else_branch),
                    Stmt::While { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.methods.iter().map(|m| count(&m.body)).sum()
    }
}

/// Iterator over a class and its superclasses; see [`Program::ancestry`].
#[derive(Clone, Debug)]
pub struct Ancestry<'p> {
    program: &'p Program,
    next: Option<ClassId>,
}

impl Iterator for Ancestry<'_> {
    type Item = ClassId;

    fn next(&mut self) -> Option<ClassId> {
        let cur = self.next?;
        self.next = self.program.class(cur).superclass;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn sample() -> Program {
        let mut pb = ProgramBuilder::new();
        let animal = pb.add_class("Animal", None);
        let dog = pb.add_class("Dog", Some(animal));
        pb.add_field(animal, "name", Type::Int, false);
        pb.add_field(dog, "tail", Type::Int, false);
        let mut mb = pb.method(animal, "speak", Type::Void, false);
        mb.ret(None);
        mb.finish();
        let mut mb = pb.method(dog, "speak", Type::Void, false);
        mb.ret(None);
        mb.finish();
        pb.finish()
    }

    #[test]
    fn object_is_class_zero() {
        let p = Program::new();
        assert_eq!(p.class(p.object_class()).name, "Object");
        assert!(p.class(p.object_class()).is_library);
        assert_eq!(p.fields()[0].name, "elem");
    }

    #[test]
    fn subclassing_and_ancestry() {
        let p = sample();
        let animal = p.class_by_name("Animal").unwrap();
        let dog = p.class_by_name("Dog").unwrap();
        assert!(p.is_subclass(dog, animal));
        assert!(p.is_subclass(dog, dog));
        assert!(!p.is_subclass(animal, dog));
        let chain: Vec<_> = p.ancestry(dog).collect();
        assert_eq!(chain, vec![dog, animal, p.object_class()]);
    }

    #[test]
    fn field_and_method_resolution() {
        let p = sample();
        let animal = p.class_by_name("Animal").unwrap();
        let dog = p.class_by_name("Dog").unwrap();
        // Inherited field resolves through the superclass chain.
        let name_field = p.resolve_field(dog, "name").unwrap();
        assert_eq!(p.field(name_field).owner, Some(animal));
        // Overridden method resolves to the most-derived declaration.
        let speak = p.resolve_method(dog, "speak").unwrap();
        assert_eq!(p.method(speak).owner, dog);
        assert_eq!(p.qualified_name(speak), "Dog.speak");
        assert!(p.resolve_field(dog, "nonexistent").is_none());
    }

    #[test]
    fn method_path_lookup() {
        let p = sample();
        assert!(p.method_by_path("Dog.speak").is_some());
        assert!(p.method_by_path("Dog.bark").is_none());
        assert!(p.method_by_path("Cat.speak").is_none());
        assert!(p.method_by_path("nodot").is_none());
    }

    #[test]
    fn statement_count_counts_nested() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.const_int(x, 1);
        mb.while_loop(|mb| {
            mb.const_int(x, 2);
            mb.if_nondet(
                |mb| {
                    mb.const_int(x, 3);
                },
                |_| {},
            );
        });
        mb.finish();
        let p = pb.finish();
        // const + while + (const + if + const)
        assert_eq!(p.statement_count(), 5);
    }
}
