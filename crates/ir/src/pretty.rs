//! Human-readable printing of IR programs.
//!
//! The printer emits valid *surface syntax*: a printed program can be fed
//! back through the frontend (constructors are printed in source form and
//! their implicit `<init>` invocations are folded back into `new C()`
//! expressions; every local is declared; colliding block-scoped names are
//! uniqued). Round-tripping is covered by integration tests.

use crate::ids::{FieldId, LocalId, MethodId};
use crate::program::Program;
use crate::stmt::{BinOp, CallKind, Cond, Operand, SiteLabel, Stmt};
use crate::types::Type;
use std::fmt::Write as _;

/// Prints a whole program in a Java-like notation.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (ci, class) in program.classes().iter().enumerate() {
        if ci == 0 {
            continue; // skip the implicit Object
        }
        if class.is_library {
            out.push_str("library ");
        }
        let _ = write!(out, "class {}", class.name);
        if let Some(sup) = class.superclass {
            if sup.index() != 0 {
                let _ = write!(out, " extends {}", program.class(sup).name);
            }
        }
        out.push_str(" {\n");
        for &fid in &class.fields {
            let f = program.field(fid);
            let _ = writeln!(
                out,
                "  {}{} {};",
                if f.is_static { "static " } else { "" },
                type_name(program, &f.ty),
                f.name
            );
        }
        for &mid in &class.methods {
            out.push_str(&print_method(program, mid, 1));
        }
        out.push_str("}\n");
    }
    out
}

/// Prints one method with the given indentation depth, in re-parseable
/// surface syntax: constructors print as `ClassName(params)`, every
/// non-parameter local is declared up front, and name collisions between
/// block-scoped locals are uniqued.
pub fn print_method(program: &Program, method: MethodId, indent: usize) -> String {
    let m = program.method(method);
    let names = unique_local_names(m);
    let mut out = String::new();
    let pad = "  ".repeat(indent);
    let params: Vec<String> = m
        .param_locals()
        .iter()
        .map(|&l| {
            let local = &m.locals[l.index()];
            format!("{} {}", type_name(program, &local.ty), names[l.index()])
        })
        .collect();
    if m.name == "<init>" {
        let _ = writeln!(
            out,
            "{pad}{}({}) {{",
            program.class(m.owner).name,
            params.join(", ")
        );
    } else {
        let _ = writeln!(
            out,
            "{pad}{}{} {}({}) {{",
            if m.is_static { "static " } else { "" },
            type_name(program, &m.ret_ty),
            m.name,
            params.join(", ")
        );
    }
    // Declare every non-parameter local (skip `this`).
    let skip = if m.is_static {
        m.param_count
    } else {
        m.param_count + 1
    };
    let body_pad = "  ".repeat(indent + 1);
    for (i, local) in m.locals.iter().enumerate().skip(skip) {
        let _ = writeln!(
            out,
            "{body_pad}{} {};",
            type_name(program, &local.ty),
            names[i]
        );
    }
    print_stmts(program, &names, &m.body, indent + 1, &mut out);
    let _ = writeln!(out, "{pad}}}");
    out
}

/// Unique printable names per local slot (`this` keeps its name).
fn unique_local_names(m: &crate::program::Method) -> Vec<String> {
    let mut used = std::collections::HashSet::new();
    let mut names = Vec::with_capacity(m.locals.len());
    for local in &m.locals {
        let mut candidate = local.name.clone();
        let mut k = 1;
        while candidate != "this" && !used.insert(candidate.clone()) {
            candidate = format!("{}${k}", local.name);
            k += 1;
        }
        if candidate == "this" {
            used.insert(candidate.clone());
        }
        names.push(candidate);
    }
    names
}

fn print_stmts(
    program: &Program,
    names: &[String],
    stmts: &[Stmt],
    indent: usize,
    out: &mut String,
) {
    let pad = "  ".repeat(indent);
    let mut i = 0;
    while i < stmts.len() {
        let stmt = &stmts[i];
        // Peephole: fold `x = new C; x.<init>(args)` back into the
        // surface form `x = new C(args);`.
        if let Stmt::New { dst, class, site } = stmt {
            if let Some(Stmt::Call {
                kind: CallKind::Special,
                method: target,
                receiver: Some(recv),
                args,
                ..
            }) = stmts.get(i + 1)
            {
                if recv == dst && program.method(*target).name == "<init>" {
                    let label = match &program.alloc(*site).label {
                        SiteLabel::None => String::new(),
                        SiteLabel::Leak => "@leak ".to_string(),
                        SiteLabel::FalsePositive(why) => format!("@fp(\"{why}\") "),
                    };
                    let arg_names: Vec<String> =
                        args.iter().map(|a| names[a.index()].clone()).collect();
                    let _ = writeln!(
                        out,
                        "{pad}{} = {label}new {}({}); // {site}",
                        names[dst.index()],
                        program.class(*class).name,
                        arg_names.join(", ")
                    );
                    i += 2;
                    continue;
                }
            }
        }
        match stmt {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let _ = writeln!(out, "{pad}if ({}) {{", cond_str(program, names, cond));
                print_stmts(program, names, then_branch, indent + 1, out);
                if else_branch.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    print_stmts(program, names, else_branch, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { id, cond, body } => {
                let _ = writeln!(
                    out,
                    "{pad}while /*{id}*/ ({}) {{",
                    cond_str(program, names, cond)
                );
                print_stmts(program, names, body, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            // Constructor invocations are implicit in `new C()` surface
            // syntax; printing them would not re-parse.
            Stmt::Call {
                kind,
                method: target,
                ..
            } if matches!(kind, crate::stmt::CallKind::Special)
                && program.method(*target).name == "<init>" => {}
            simple => {
                let _ = writeln!(out, "{pad}{}", stmt_str_named(program, names, simple));
            }
        }
        i += 1;
    }
}

/// Renders a single simple statement using the method's raw local names.
pub fn stmt_str(program: &Program, method: MethodId, stmt: &Stmt) -> String {
    let names: Vec<String> = program
        .method(method)
        .locals
        .iter()
        .map(|l| l.name.clone())
        .collect();
    stmt_str_named(program, &names, stmt)
}

fn stmt_str_named(program: &Program, names: &[String], stmt: &Stmt) -> String {
    let l = |id: &LocalId| names[id.index()].clone();
    let f = |id: &FieldId| program.field(*id).name.clone();
    match stmt {
        Stmt::New { dst, class, site } => {
            let label = match &program.alloc(*site).label {
                SiteLabel::None => String::new(),
                SiteLabel::Leak => "@leak ".to_string(),
                SiteLabel::FalsePositive(why) => format!("@fp(\"{why}\") "),
            };
            format!(
                "{} = {label}new {}(); // {site}",
                l(dst),
                program.class(*class).name
            )
        }
        Stmt::NewArray {
            dst,
            elem,
            len,
            site,
        } => format!(
            "{} = new {}[{}]; // {site}",
            l(dst),
            type_name(program, elem),
            operand_str_named(names, len)
        ),
        Stmt::Assign { dst, src } => format!("{} = {};", l(dst), l(src)),
        Stmt::AssignNull { dst } => format!("{} = null;", l(dst)),
        Stmt::Const { dst, value } => format!("{} = {value};", l(dst)),
        Stmt::NonDetBool { dst } => format!("{} = nondet();", l(dst)),
        Stmt::BinOp { dst, op, lhs, rhs } => format!(
            "{} = {} {} {};",
            l(dst),
            operand_str_named(names, lhs),
            op_str(*op),
            operand_str_named(names, rhs)
        ),
        Stmt::Load { dst, base, field } => format!("{} = {}.{};", l(dst), l(base), f(field)),
        Stmt::Store { base, field, src } => format!("{}.{} = {};", l(base), f(field), l(src)),
        Stmt::ArrayLoad { dst, base, index } => format!(
            "{} = {}[{}];",
            l(dst),
            l(base),
            operand_str_named(names, index)
        ),
        Stmt::ArrayStore { base, index, src } => format!(
            "{}[{}] = {};",
            l(base),
            operand_str_named(names, index),
            l(src)
        ),
        Stmt::StaticLoad { dst, field } => {
            format!("{} = {};", l(dst), program.field_name(*field))
        }
        Stmt::StaticStore { field, src } => {
            format!("{} = {};", program.field_name(*field), l(src))
        }
        Stmt::Call {
            dst,
            kind,
            method: target,
            receiver,
            args,
            site,
        } => {
            let mut s = String::new();
            if let Some(d) = dst {
                let _ = write!(s, "{} = ", l(d));
            }
            match (kind, receiver) {
                (CallKind::Static, _) => {
                    let _ = write!(s, "{}", program.qualified_name(*target));
                }
                (_, Some(r)) => {
                    let _ = write!(s, "{}.{}", l(r), program.method(*target).name);
                }
                _ => {
                    let _ = write!(s, "{}", program.qualified_name(*target));
                }
            }
            let arg_names: Vec<String> = args.iter().map(&l).collect();
            let _ = write!(s, "({}); // {site}", arg_names.join(", "));
            s
        }
        Stmt::Return(None) => "return;".to_string(),
        Stmt::Return(Some(v)) => format!("return {};", l(v)),
        Stmt::Break => "break;".to_string(),
        Stmt::Continue => "continue;".to_string(),
        Stmt::Nop => "nop;".to_string(),
        Stmt::If { .. } | Stmt::While { .. } => "<control>".to_string(),
    }
}

fn cond_str(program: &Program, names: &[String], cond: &Cond) -> String {
    let _ = program;
    let l = |id: &LocalId| names[id.index()].clone();
    match cond {
        Cond::NonDet => "nondet()".to_string(),
        Cond::IsNull(x) => format!("{} == null", l(x)),
        Cond::NotNull(x) => format!("{} != null", l(x)),
        Cond::Cmp { op, lhs, rhs } => format!(
            "{} {} {}",
            operand_str_named(names, lhs),
            op_str(*op),
            operand_str_named(names, rhs)
        ),
        Cond::Local(x) => l(x),
        Cond::NotLocal(x) => format!("!{}", l(x)),
    }
}

fn operand_str_named(names: &[String], op: &Operand) -> String {
    match op {
        Operand::Local(l) => names[l.index()].clone(),
        Operand::Const(c) => c.to_string(),
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Renders a type using source-level names.
pub fn type_name(program: &Program, ty: &Type) -> String {
    match ty {
        Type::Int => "int".to_string(),
        Type::Bool => "boolean".to_string(),
        Type::Void => "void".to_string(),
        Type::Ref(c) => program.class(*c).name.clone(),
        Type::Array(elem) => format!("{}[]", type_name(program, elem)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn prints_classes_and_methods() {
        let mut pb = ProgramBuilder::new();
        let order = pb.add_class("Order", None);
        let tx = pb.add_class("Transaction", None);
        let curr = pb.add_field(tx, "curr", Type::Ref(order), false);
        let mut mb =
            pb.method_with_params(tx, "process", Type::Void, false, &[("p", Type::Ref(order))]);
        let this = mb.this();
        let p0 = mb.param(0);
        mb.store(this, curr, p0);
        mb.ret(None);
        mb.finish();
        let program = pb.finish();
        let text = print_program(&program);
        assert!(text.contains("class Transaction"), "{text}");
        assert!(text.contains("Order curr;"), "{text}");
        assert!(text.contains("this.curr = p;"), "{text}");
    }

    #[test]
    fn prints_loops_and_labels() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.label_next(SiteLabel::Leak);
        mb.while_loop(|mb| {
            mb.new_object(x, c);
        });
        mb.finish();
        let program = pb.finish();
        let text = print_program(&program);
        assert!(text.contains("while /*loop#0*/ (nondet())"), "{text}");
        assert!(text.contains("@leak new C"), "{text}");
    }
}
