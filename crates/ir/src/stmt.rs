//! Statements, conditions and operands of the structured IR.

use crate::ids::{AllocSite, CallSite, ClassId, FieldId, LocalId, LoopId, MethodId};

/// Ground-truth label attached to an allocation site by a subject program.
///
/// Subject programs in the benchmark suite annotate allocation sites with
/// whether the site is a genuine leak (`@leak`) or an expected
/// false positive (`@fp("reason")`). The Table 1 harness compares the
/// detector's report against these labels to compute the FP / FPR columns
/// without manual inspection.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SiteLabel {
    /// No ground-truth annotation; reporting this site is a false positive
    /// unless it carries `Leak`.
    #[default]
    None,
    /// The site genuinely leaks: its instances escape the checked loop and
    /// are never used by later iterations.
    Leak,
    /// Reporting this site is an *expected* false positive, with the cause
    /// the paper identified (e.g. "singleton", "destructive-update",
    /// "gui-temporary", "terminating-thread").
    FalsePositive(String),
}

impl SiteLabel {
    /// Returns `true` for [`SiteLabel::Leak`].
    pub fn is_leak(&self) -> bool {
        matches!(self, SiteLabel::Leak)
    }

    /// Returns `true` for [`SiteLabel::FalsePositive`].
    pub fn is_expected_fp(&self) -> bool {
        matches!(self, SiteLabel::FalsePositive(_))
    }
}

/// Binary operators over `int`/`boolean` operands.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (rounds toward zero; division by zero yields zero
    /// in the concrete interpreter to keep execution total).
    Div,
    /// Integer remainder (remainder by zero yields zero).
    Rem,
    /// Less-than comparison producing a boolean.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality on integers or booleans.
    Eq,
    /// Inequality on integers or booleans.
    Ne,
    /// Logical conjunction on booleans.
    And,
    /// Logical disjunction on booleans.
    Or,
}

impl BinOp {
    /// Returns `true` if the operator produces a boolean result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// Returns `true` for the logical connectives `&&` and `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// An operand of a [`BinOp`] or a comparison in a [`Cond`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// The current value of a local variable.
    Local(LocalId),
    /// An integer constant.
    Const(i64),
}

/// A branch / loop condition.
///
/// Static analyses treat every condition as non-deterministic (both branches
/// are merged at joins), exactly as the paper's abstract semantics does. The
/// concrete interpreter evaluates conditions for real so subject programs
/// execute deterministically.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// An opaque condition the analysis knows nothing about. The concrete
    /// interpreter resolves it from a scripted decision stream.
    NonDet,
    /// `x == null`.
    IsNull(LocalId),
    /// `x != null`.
    NotNull(LocalId),
    /// `a OP b` where `OP` is a comparison or the operands are booleans.
    Cmp {
        /// Comparison operator; must satisfy [`BinOp::is_comparison`] or be
        /// a logical connective applied to boolean locals.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// The boolean value of a local.
    Local(LocalId),
    /// Negation of a boolean local.
    NotLocal(LocalId),
}

/// How a call site dispatches.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CallKind {
    /// Virtual dispatch on the dynamic type of the receiver.
    Virtual,
    /// Static (class) method invocation; no receiver.
    Static,
    /// Non-virtual instance call: constructors (`<init>`) and `super` calls.
    Special,
}

/// A statement in the structured IR.
///
/// The heap-relevant statement forms mirror the paper's while language
/// (Figure 2): allocation, variable copy, null assignment, field load and
/// field store, plus structured `if` / `while`. The remaining forms (integer
/// arithmetic, array accesses with real indices, calls, returns) extend the
/// formal core to a language in which realistic subject programs can be
/// written, matching what Soot's Jimple provides to the original tool.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `dst = new C` — allocate an instance of class `class` at site `site`.
    New {
        /// Destination local.
        dst: LocalId,
        /// Class being instantiated.
        class: ClassId,
        /// The static allocation site identifier.
        site: AllocSite,
    },
    /// `dst = new T[len]` — allocate an array at site `site`.
    NewArray {
        /// Destination local.
        dst: LocalId,
        /// Element type of the array.
        elem: crate::types::Type,
        /// Length operand.
        len: Operand,
        /// The static allocation site identifier.
        site: AllocSite,
    },
    /// `dst = src` — copy between locals.
    Assign {
        /// Destination local.
        dst: LocalId,
        /// Source local.
        src: LocalId,
    },
    /// `dst = null`.
    AssignNull {
        /// Destination local.
        dst: LocalId,
    },
    /// `dst = c` — integer or boolean constant.
    Const {
        /// Destination local.
        dst: LocalId,
        /// Constant value (booleans are 0 / 1).
        value: i64,
    },
    /// `dst = nondet()` — an opaque boolean. Static analyses treat the
    /// result as unknown; the concrete interpreter resolves it from its
    /// scripted decision stream.
    NonDetBool {
        /// Destination local.
        dst: LocalId,
    },
    /// `dst = lhs OP rhs` over primitives.
    BinOp {
        /// Destination local.
        dst: LocalId,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = base.field` — instance field load.
    Load {
        /// Destination local.
        dst: LocalId,
        /// Object whose field is read.
        base: LocalId,
        /// Field being read.
        field: FieldId,
    },
    /// `base.field = src` — instance field store.
    Store {
        /// Object whose field is written.
        base: LocalId,
        /// Field being written.
        field: FieldId,
        /// Value stored.
        src: LocalId,
    },
    /// `dst = base[index]` — array element load (field `elem` to analyses).
    ArrayLoad {
        /// Destination local.
        dst: LocalId,
        /// Array object.
        base: LocalId,
        /// Element index; analyses ignore it, the interpreter does not.
        index: Operand,
    },
    /// `base[index] = src` — array element store.
    ArrayStore {
        /// Array object.
        base: LocalId,
        /// Element index.
        index: Operand,
        /// Value stored.
        src: LocalId,
    },
    /// `dst = C.field` — static field load.
    StaticLoad {
        /// Destination local.
        dst: LocalId,
        /// Static field being read.
        field: FieldId,
    },
    /// `C.field = src` — static field store.
    StaticStore {
        /// Static field being written.
        field: FieldId,
        /// Value stored.
        src: LocalId,
    },
    /// `dst = recv.m(args)` / `dst = C.m(args)` — method invocation.
    Call {
        /// Destination local for the return value, if any.
        dst: Option<LocalId>,
        /// Dispatch kind.
        kind: CallKind,
        /// Statically resolved target (the declaration found in the
        /// receiver's declared class; virtual dispatch may select an
        /// override at run time / analysis time).
        method: MethodId,
        /// Receiver local for instance calls.
        receiver: Option<LocalId>,
        /// Argument locals, excluding the receiver.
        args: Vec<LocalId>,
        /// The call-site identifier (a CFL parenthesis).
        site: CallSite,
    },
    /// `return` / `return v`.
    Return(Option<LocalId>),
    /// `if (cond) { then } else { otherwise }`.
    If {
        /// Branch condition.
        cond: Cond,
        /// Statements executed when the condition holds.
        then_branch: Vec<Stmt>,
        /// Statements executed otherwise (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { body }` — a structured loop with identity `id`.
    While {
        /// The loop identity, registered in [`crate::Program::loops`].
        id: LoopId,
        /// Loop condition.
        cond: Cond,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// `break` out of the innermost enclosing loop.
    Break,
    /// `continue` with the next iteration of the innermost enclosing loop.
    Continue,
    /// No-op, used by lowering to keep positions stable.
    Nop,
}

impl Stmt {
    /// Returns the allocation site if this statement allocates.
    pub fn alloc_site(&self) -> Option<AllocSite> {
        match self {
            Stmt::New { site, .. } | Stmt::NewArray { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Returns the call site if this statement is an invocation.
    pub fn call_site(&self) -> Option<CallSite> {
        match self {
            Stmt::Call { site, .. } => Some(*site),
            _ => None,
        }
    }

    /// Returns `true` if this is a structured control statement
    /// (`if` or `while`).
    pub fn is_control(&self) -> bool {
        matches!(self, Stmt::If { .. } | Stmt::While { .. })
    }

    /// Returns the local defined (written) by this statement, if it is a
    /// simple (non-control) statement.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Stmt::New { dst, .. }
            | Stmt::NewArray { dst, .. }
            | Stmt::Assign { dst, .. }
            | Stmt::AssignNull { dst }
            | Stmt::Const { dst, .. }
            | Stmt::NonDetBool { dst }
            | Stmt::BinOp { dst, .. }
            | Stmt::Load { dst, .. }
            | Stmt::ArrayLoad { dst, .. }
            | Stmt::StaticLoad { dst, .. } => Some(*dst),
            Stmt::Call { dst, .. } => *dst,
            _ => None,
        }
    }

    /// Collects the locals used (read) by this statement, ignoring nested
    /// statements of control forms.
    pub fn uses(&self) -> Vec<LocalId> {
        fn operand(out: &mut Vec<LocalId>, op: &Operand) {
            if let Operand::Local(l) = op {
                out.push(*l);
            }
        }
        fn cond(out: &mut Vec<LocalId>, c: &Cond) {
            match c {
                Cond::NonDet => {}
                Cond::IsNull(l) | Cond::NotNull(l) | Cond::Local(l) | Cond::NotLocal(l) => {
                    out.push(*l)
                }
                Cond::Cmp { lhs, rhs, .. } => {
                    operand(out, lhs);
                    operand(out, rhs);
                }
            }
        }
        let mut out = Vec::new();
        match self {
            Stmt::New { .. }
            | Stmt::AssignNull { .. }
            | Stmt::Const { .. }
            | Stmt::NonDetBool { .. } => {}
            Stmt::NewArray { len, .. } => operand(&mut out, len),
            Stmt::Assign { src, .. } => out.push(*src),
            Stmt::BinOp { lhs, rhs, .. } => {
                operand(&mut out, lhs);
                operand(&mut out, rhs);
            }
            Stmt::Load { base, .. } => out.push(*base),
            Stmt::Store { base, src, .. } => {
                out.push(*base);
                out.push(*src);
            }
            Stmt::ArrayLoad { base, index, .. } => {
                out.push(*base);
                operand(&mut out, index);
            }
            Stmt::ArrayStore { base, index, src } => {
                out.push(*base);
                operand(&mut out, index);
                out.push(*src);
            }
            Stmt::StaticLoad { .. } => {}
            Stmt::StaticStore { src, .. } => out.push(*src),
            Stmt::Call { receiver, args, .. } => {
                if let Some(r) = receiver {
                    out.push(*r);
                }
                out.extend(args.iter().copied());
            }
            Stmt::Return(Some(v)) => out.push(*v),
            Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Nop => {}
            Stmt::If { cond: c, .. } => cond(&mut out, c),
            Stmt::While { cond: c, .. } => cond(&mut out, c),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let s = Stmt::Store {
            base: LocalId(1),
            field: FieldId(2),
            src: LocalId(3),
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![LocalId(1), LocalId(3)]);

        let l = Stmt::Load {
            dst: LocalId(0),
            base: LocalId(1),
            field: FieldId(2),
        };
        assert_eq!(l.def(), Some(LocalId(0)));
        assert_eq!(l.uses(), vec![LocalId(1)]);
    }

    #[test]
    fn call_uses_include_receiver_and_args() {
        let c = Stmt::Call {
            dst: Some(LocalId(9)),
            kind: CallKind::Virtual,
            method: MethodId(4),
            receiver: Some(LocalId(0)),
            args: vec![LocalId(1), LocalId(2)],
            site: CallSite(0),
        };
        assert_eq!(c.def(), Some(LocalId(9)));
        assert_eq!(c.uses(), vec![LocalId(0), LocalId(1), LocalId(2)]);
        assert_eq!(c.call_site(), Some(CallSite(0)));
    }

    #[test]
    fn alloc_site_accessors() {
        let s = Stmt::New {
            dst: LocalId(0),
            class: ClassId(1),
            site: AllocSite(5),
        };
        assert_eq!(s.alloc_site(), Some(AllocSite(5)));
        assert_eq!(s.call_site(), None);
        assert!(!s.is_control());
    }

    #[test]
    fn condition_uses() {
        let s = Stmt::If {
            cond: Cond::Cmp {
                op: BinOp::Lt,
                lhs: Operand::Local(LocalId(3)),
                rhs: Operand::Const(10),
            },
            then_branch: vec![],
            else_branch: vec![],
        };
        assert!(s.is_control());
        assert_eq!(s.uses(), vec![LocalId(3)]);
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }

    #[test]
    fn site_label_predicates() {
        assert!(SiteLabel::Leak.is_leak());
        assert!(!SiteLabel::Leak.is_expected_fp());
        assert!(SiteLabel::FalsePositive("singleton".into()).is_expected_fp());
        assert!(!SiteLabel::None.is_leak());
        assert_eq!(SiteLabel::default(), SiteLabel::None);
    }
}
