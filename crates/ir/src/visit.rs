//! Recursive walkers over structured statement trees.

use crate::stmt::Stmt;

/// Visits every statement in `stmts` in source order, recursing into the
/// bodies of `if` and `while` statements. The callback sees control
/// statements *before* their nested bodies.
pub fn walk_stmts<'s>(stmts: &'s [Stmt], visit: &mut impl FnMut(&'s Stmt)) {
    for stmt in stmts {
        visit(stmt);
        match stmt {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                walk_stmts(then_branch, visit);
                walk_stmts(else_branch, visit);
            }
            Stmt::While { body, .. } => walk_stmts(body, visit),
            _ => {}
        }
    }
}

/// Like [`walk_stmts`] but tracks the current loop-nesting depth: the depth
/// is 0 outside any loop and increments inside each `while` body.
pub fn walk_stmts_with_depth<'s>(stmts: &'s [Stmt], visit: &mut impl FnMut(&'s Stmt, usize)) {
    fn go<'s>(stmts: &'s [Stmt], depth: usize, visit: &mut impl FnMut(&'s Stmt, usize)) {
        for stmt in stmts {
            visit(stmt, depth);
            match stmt {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    go(then_branch, depth, visit);
                    go(else_branch, depth, visit);
                }
                Stmt::While { body, .. } => go(body, depth + 1, visit),
                _ => {}
            }
        }
    }
    go(stmts, 0, visit)
}

/// Finds the body of the loop with the given id anywhere inside `stmts`.
pub fn find_loop(stmts: &[Stmt], id: crate::ids::LoopId) -> Option<&[Stmt]> {
    for stmt in stmts {
        match stmt {
            Stmt::While {
                id: found, body, ..
            } => {
                if *found == id {
                    return Some(body);
                }
                if let Some(b) = find_loop(body, id) {
                    return Some(b);
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                if let Some(b) = find_loop(then_branch, id) {
                    return Some(b);
                }
                if let Some(b) = find_loop(else_branch, id) {
                    return Some(b);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Type;

    #[test]
    fn walk_visits_nested_statements() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.new_object(x, c);
        mb.while_loop(|mb| {
            mb.if_nondet(
                |mb| {
                    mb.new_object(x, c);
                },
                |_| {},
            );
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let mut count = 0usize;
        let mut allocs = 0usize;
        walk_stmts(&p.method(m).body, &mut |s| {
            count += 1;
            if s.alloc_site().is_some() {
                allocs += 1;
            }
        });
        // new, while, if, new
        assert_eq!(count, 4);
        assert_eq!(allocs, 2);
    }

    #[test]
    fn depth_tracks_loops_only() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.while_loop(|mb| {
            mb.while_loop(|mb| {
                mb.new_object(x, c);
            });
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let mut max_depth = 0usize;
        walk_stmts_with_depth(&p.method(m).body, &mut |s, d| {
            if s.alloc_site().is_some() {
                max_depth = max_depth.max(d);
            }
        });
        assert_eq!(max_depth, 2);
    }

    #[test]
    fn find_loop_locates_nested_bodies() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        let mut inner_id = None;
        mb.if_nondet(
            |mb| {
                inner_id = Some(mb.while_loop(|mb| {
                    mb.new_object(x, c);
                }));
            },
            |_| {},
        );
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let body = find_loop(&p.method(m).body, inner_id.unwrap()).unwrap();
        assert_eq!(body.len(), 1);
        assert!(find_loop(&p.method(m).body, crate::ids::LoopId(99)).is_none());
    }
}
