//! Natural-loop discovery and heuristic loop ranking.
//!
//! The paper relies on the developer to designate the "main event loop" to
//! check. For convenience this module also *discovers* candidate loops: it
//! enumerates the structured loops of each method together with structural
//! statistics (nesting depth, number of allocation and call statements in
//! the body) that a client can use to rank candidates — mirroring the
//! paper's future-work suggestion of "identifying suspicious loops using
//! structural information extracted from the code".

use crate::ids::{LoopId, MethodId};
use crate::program::Program;
use crate::stmt::Stmt;
use crate::visit::walk_stmts;

/// Structural statistics about one loop, used for candidate ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoopStats {
    /// The loop's identity.
    pub id: LoopId,
    /// The method that contains the loop.
    pub method: MethodId,
    /// Nesting depth within the method (0 = outermost).
    pub depth: usize,
    /// Number of allocation statements lexically inside the body.
    pub allocs_inside: usize,
    /// Number of call statements lexically inside the body.
    pub calls_inside: usize,
    /// Number of heap store statements lexically inside the body.
    pub stores_inside: usize,
    /// Total number of statements lexically inside the body.
    pub body_size: usize,
}

impl LoopStats {
    /// Heuristic interest score: loops that allocate and call a lot are
    /// likelier event loops. Higher is more interesting.
    pub fn score(&self) -> usize {
        self.allocs_inside * 4 + self.calls_inside * 2 + self.stores_inside
            - self.depth.min(self.body_size)
    }
}

/// Collects statistics for every structured loop in `method`.
pub fn loops_in_method(program: &Program, method: MethodId) -> Vec<LoopStats> {
    let mut out = Vec::new();
    collect(method, &program.method(method).body, 0, &mut out);
    out
}

/// Collects statistics for every structured loop in the whole program,
/// sorted by descending [`LoopStats::score`].
pub fn all_loops(program: &Program) -> Vec<LoopStats> {
    let mut out = Vec::new();
    for (i, _) in program.methods().iter().enumerate() {
        let method = MethodId::from_index(i);
        collect(method, &program.method(method).body, 0, &mut out);
    }
    out.sort_by_key(|s| std::cmp::Reverse(s.score()));
    out
}

fn collect(method: MethodId, stmts: &[Stmt], depth: usize, out: &mut Vec<LoopStats>) {
    for stmt in stmts {
        match stmt {
            Stmt::While { id, body, .. } => {
                let mut allocs = 0;
                let mut calls = 0;
                let mut stores = 0;
                let mut size = 0;
                walk_stmts(body, &mut |s| {
                    size += 1;
                    match s {
                        Stmt::New { .. } | Stmt::NewArray { .. } => allocs += 1,
                        Stmt::Call { .. } => calls += 1,
                        Stmt::Store { .. } | Stmt::ArrayStore { .. } | Stmt::StaticStore { .. } => {
                            stores += 1
                        }
                        _ => {}
                    }
                });
                out.push(LoopStats {
                    id: *id,
                    method,
                    depth,
                    allocs_inside: allocs,
                    calls_inside: calls,
                    stores_inside: stores,
                    body_size: size,
                });
                collect(method, body, depth + 1, out);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect(method, then_branch, depth, out);
                collect(method, else_branch, depth, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Type;

    #[test]
    fn stats_reflect_body_contents() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let f = pb.add_field(c, "f", Type::Ref(c), false);
        let mut mb = pb.method(c, "m", Type::Void, false);
        let this = mb.this();
        let x = mb.local("x", Type::Ref(c));
        let outer = mb.while_loop(|mb| {
            mb.new_object(x, c);
            mb.store(this, f, x);
            mb.while_loop(|mb| {
                mb.new_object(x, c);
            });
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let stats = loops_in_method(&p, m);
        assert_eq!(stats.len(), 2);
        let outer_stats = stats.iter().find(|s| s.id == outer).unwrap();
        assert_eq!(outer_stats.depth, 0);
        assert_eq!(outer_stats.allocs_inside, 2);
        assert_eq!(outer_stats.stores_inside, 1);
        let inner_stats = stats.iter().find(|s| s.id != outer).unwrap();
        assert_eq!(inner_stats.depth, 1);
        assert_eq!(inner_stats.allocs_inside, 1);
    }

    #[test]
    fn all_loops_ranks_by_score() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "busy", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.while_loop(|mb| {
            mb.new_object(x, c);
            mb.new_object(x, c);
        });
        mb.finish();
        let mut mb = pb.method(c, "idle", Type::Void, true);
        let y = mb.local("y", Type::Int);
        mb.while_loop(|mb| {
            mb.const_int(y, 0);
        });
        mb.finish();
        let p = pb.finish();
        let ranked = all_loops(&p);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].method, p.method_by_path("C.busy").unwrap());
        assert!(ranked[0].score() > ranked[1].score());
    }
}
