//! Structural well-formedness checks for IR programs.
//!
//! The frontend and builders should only produce valid programs; analyses
//! assume validity, so `validate` exists to catch construction bugs early
//! (and to sanity-check programs produced by the random generator used in
//! property tests).

use crate::ids::{LocalId, MethodId};
use crate::program::Program;
use crate::stmt::{Operand, Stmt};
use std::fmt;

/// A structural validity violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// The offending method, when the violation is inside a body.
    pub method: Option<MethodId>,
    /// Description of the violation.
    pub message: String,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.method {
            Some(m) => write!(f, "in {m}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks the whole program, returning every violation found.
pub fn validate(program: &Program) -> Vec<ValidateError> {
    let mut errors = Vec::new();

    // Class hierarchy must be acyclic.
    for (ci, _) in program.classes().iter().enumerate() {
        let start = crate::ids::ClassId::from_index(ci);
        let mut slow = Some(start);
        let mut fast = program.class(start).superclass;
        while let (Some(s), Some(f)) = (slow, fast) {
            if s == f {
                errors.push(ValidateError {
                    method: None,
                    message: format!("class hierarchy cycle through {}", program.class(s).name),
                });
                break;
            }
            slow = program.class(s).superclass;
            fast = program
                .class(f)
                .superclass
                .and_then(|n| program.class(n).superclass);
        }
    }

    for (mi, method) in program.methods().iter().enumerate() {
        let id = MethodId::from_index(mi);
        let local_count = method.locals.len();
        let check_local = |errors: &mut Vec<ValidateError>, l: LocalId, what: &str| {
            if l.index() >= local_count {
                errors.push(ValidateError {
                    method: Some(id),
                    message: format!("{what} local {l} out of range ({local_count} locals)"),
                });
            }
        };
        let check_operand = |errors: &mut Vec<ValidateError>, op: &Operand| {
            if let Operand::Local(l) = op {
                check_local(errors, *l, "operand");
            }
        };
        validate_stmts(
            program,
            id,
            &method.body,
            0,
            &mut errors,
            &check_local,
            &check_operand,
        );
    }

    // Allocation/call/loop tables must reference real methods.
    for info in program.allocs() {
        if info.method.index() >= program.methods().len() {
            errors.push(ValidateError {
                method: None,
                message: format!("allocation site references missing method {}", info.method),
            });
        }
    }
    for info in program.loops() {
        if info.method.index() >= program.methods().len() {
            errors.push(ValidateError {
                method: None,
                message: format!("loop references missing method {}", info.method),
            });
        }
    }

    errors
}

/// Convenience: panics with a readable message when the program is invalid.
///
/// # Panics
///
/// Panics if [`validate`] reports any violation.
pub fn assert_valid(program: &Program) {
    let errors = validate(program);
    assert!(
        errors.is_empty(),
        "invalid program:\n{}",
        errors
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[allow(clippy::too_many_arguments)]
fn validate_stmts(
    program: &Program,
    method: MethodId,
    stmts: &[Stmt],
    loop_depth: usize,
    errors: &mut Vec<ValidateError>,
    check_local: &impl Fn(&mut Vec<ValidateError>, LocalId, &str),
    check_operand: &impl Fn(&mut Vec<ValidateError>, &Operand),
) {
    for stmt in stmts {
        for used in stmt.uses() {
            check_local(errors, used, "used");
        }
        if let Some(def) = stmt.def() {
            check_local(errors, def, "defined");
        }
        match stmt {
            Stmt::New { class, site, .. } => {
                if class.index() >= program.classes().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("new of missing class {class}"),
                    });
                }
                if site.index() >= program.allocs().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("unregistered allocation site {site}"),
                    });
                } else if program.alloc(*site).method != method {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("allocation site {site} registered to another method"),
                    });
                }
            }
            Stmt::NewArray { len, site, .. } => {
                check_operand(errors, len);
                if site.index() >= program.allocs().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("unregistered allocation site {site}"),
                    });
                }
            }
            Stmt::Load { field, .. } | Stmt::Store { field, .. } => {
                if field.index() >= program.fields().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("access to missing field {field}"),
                    });
                } else if program.field(*field).is_static {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!(
                            "instance access to static field {}",
                            program.field_name(*field)
                        ),
                    });
                }
            }
            Stmt::StaticLoad { field, .. } | Stmt::StaticStore { field, .. } => {
                if field.index() >= program.fields().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("access to missing static field {field}"),
                    });
                } else if !program.field(*field).is_static {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!(
                            "static access to instance field {}",
                            program.field_name(*field)
                        ),
                    });
                }
            }
            Stmt::BinOp { lhs, rhs, .. } => {
                check_operand(errors, lhs);
                check_operand(errors, rhs);
            }
            Stmt::ArrayLoad { index, .. } => check_operand(errors, index),
            Stmt::ArrayStore { index, .. } => check_operand(errors, index),
            Stmt::Call {
                method: target,
                receiver,
                args,
                ..
            } => {
                if target.index() >= program.methods().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("call to missing method {target}"),
                    });
                } else {
                    let callee = program.method(*target);
                    if callee.is_static && receiver.is_some() {
                        errors.push(ValidateError {
                            method: Some(method),
                            message: format!(
                                "static callee {} given a receiver",
                                program.qualified_name(*target)
                            ),
                        });
                    }
                    if !callee.is_static && receiver.is_none() {
                        errors.push(ValidateError {
                            method: Some(method),
                            message: format!(
                                "instance callee {} missing a receiver",
                                program.qualified_name(*target)
                            ),
                        });
                    }
                    if callee.param_count != args.len() {
                        errors.push(ValidateError {
                            method: Some(method),
                            message: format!(
                                "call to {} passes {} args, expects {}",
                                program.qualified_name(*target),
                                args.len(),
                                callee.param_count
                            ),
                        });
                    }
                }
            }
            Stmt::Break | Stmt::Continue if loop_depth == 0 => {
                errors.push(ValidateError {
                    method: Some(method),
                    message: "break/continue outside of a loop".to_string(),
                });
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                validate_stmts(
                    program,
                    method,
                    then_branch,
                    loop_depth,
                    errors,
                    check_local,
                    check_operand,
                );
                validate_stmts(
                    program,
                    method,
                    else_branch,
                    loop_depth,
                    errors,
                    check_local,
                    check_operand,
                );
            }
            Stmt::While { id, body, .. } => {
                if id.index() >= program.loops().len() {
                    errors.push(ValidateError {
                        method: Some(method),
                        message: format!("unregistered loop {id}"),
                    });
                }
                validate_stmts(
                    program,
                    method,
                    body,
                    loop_depth + 1,
                    errors,
                    check_local,
                    check_operand,
                );
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Type;

    #[test]
    fn builder_output_is_valid() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let f = pb.add_field(c, "f", Type::Ref(c), false);
        let mut mb = pb.method(c, "m", Type::Void, false);
        let this = mb.this();
        let x = mb.local("x", Type::Ref(c));
        mb.new_object(x, c);
        mb.store(this, f, x);
        mb.while_loop(|mb| {
            mb.if_nondet(|mb| mb.brk(), |mb| mb.cont());
        });
        mb.ret(None);
        mb.finish();
        let p = pb.finish();
        assert_valid(&p);
    }

    #[test]
    fn detects_out_of_range_local() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        mb.assign(LocalId(5), LocalId(7));
        mb.finish();
        let p = pb.finish();
        let errors = validate(&p);
        assert!(errors.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn detects_break_outside_loop() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        mb.brk();
        mb.finish();
        let p = pb.finish();
        let errors = validate(&p);
        assert!(errors
            .iter()
            .any(|e| e.message.contains("outside of a loop")));
    }

    #[test]
    fn detects_arity_mismatch() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut callee = pb.method_with_params(c, "f", Type::Void, true, &[("a", Type::Int)]);
        callee.ret(None);
        let callee_id = callee.id();
        callee.finish();
        let mut mb = pb.method(c, "g", Type::Void, true);
        mb.call_static(None, callee_id, &[]);
        mb.finish();
        let p = pb.finish();
        let errors = validate(&p);
        assert!(errors.iter().any(|e| e.message.contains("expects 1")));
    }

    #[test]
    fn detects_static_instance_field_confusion() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let stat = pb.add_field(c, "s", Type::Ref(c), true);
        let mut mb = pb.method(c, "m", Type::Void, false);
        let this = mb.this();
        let x = mb.local("x", Type::Ref(c));
        mb.load(x, this, stat); // instance access to static field
        mb.finish();
        let p = pb.finish();
        let errors = validate(&p);
        assert!(errors
            .iter()
            .any(|e| e.message.contains("instance access to static field")));
    }
}
