//! Static types of the IR language.

use crate::ids::ClassId;
use std::fmt;

/// A static type in the IR language.
///
/// The language distinguishes reference types (classes and arrays) from the
/// two primitive value types `int` and `boolean`. Only reference-typed
/// values participate in the heap analyses; primitives exist so that subject
/// programs can have realistic loop counters, indices and flags, and so the
/// concrete interpreter can execute them deterministically.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// The 64-bit signed integer primitive.
    Int,
    /// The boolean primitive.
    Bool,
    /// Absence of a value; only valid as a method return type.
    Void,
    /// A reference to an instance of the named class (or a subclass).
    Ref(ClassId),
    /// A reference to an array with the given element type.
    Array(Box<Type>),
}

impl Type {
    /// Returns `true` if values of this type are heap references
    /// (class instances, arrays, or `null`).
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Ref(_) | Type::Array(_))
    }

    /// Returns `true` for the primitive value types `int` and `boolean`.
    pub fn is_primitive(&self) -> bool {
        matches!(self, Type::Int | Type::Bool)
    }

    /// Returns the element type if this is an array type.
    pub fn element(&self) -> Option<&Type> {
        match self {
            Type::Array(elem) => Some(elem),
            _ => None,
        }
    }

    /// Returns the class behind a plain reference type.
    pub fn class(&self) -> Option<ClassId> {
        match self {
            Type::Ref(class) => Some(*class),
            _ => None,
        }
    }

    /// Wraps this type in one level of array.
    pub fn into_array(self) -> Type {
        Type::Array(Box::new(self))
    }

    /// Returns the number of array dimensions (0 for non-arrays).
    pub fn dimensions(&self) -> usize {
        match self {
            Type::Array(elem) => 1 + elem.dimensions(),
            _ => 0,
        }
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "boolean"),
            Type::Void => write!(f, "void"),
            Type::Ref(class) => write!(f, "ref({class})"),
            Type::Array(elem) => write!(f, "{elem:?}[]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_predicates() {
        assert!(Type::Ref(ClassId(0)).is_reference());
        assert!(Type::Int.into_array().is_reference());
        assert!(!Type::Int.is_reference());
        assert!(Type::Bool.is_primitive());
        assert!(!Type::Void.is_primitive());
    }

    #[test]
    fn array_element_access() {
        let ty = Type::Ref(ClassId(3)).into_array().into_array();
        assert_eq!(ty.dimensions(), 2);
        let inner = ty.element().unwrap();
        assert_eq!(inner.dimensions(), 1);
        assert_eq!(inner.element(), Some(&Type::Ref(ClassId(3))));
        assert_eq!(ty.class(), None);
        assert_eq!(Type::Ref(ClassId(3)).class(), Some(ClassId(3)));
    }

    #[test]
    fn debug_formatting() {
        let ty = Type::Int.into_array();
        assert_eq!(format!("{ty:?}"), "int[]");
    }
}
