//! Programmatic construction of IR programs.
//!
//! The frontend produces programs from source text; analyses' unit tests and
//! the synthetic program generator build them directly through
//! [`ProgramBuilder`] / [`MethodBuilder`]. Structured statements are built
//! with closures so nesting in the Rust source mirrors nesting in the IR:
//!
//! ```
//! use leakchecker_ir::builder::ProgramBuilder;
//! use leakchecker_ir::types::Type;
//!
//! let mut pb = ProgramBuilder::new();
//! let c = pb.add_class("C", None);
//! let mut mb = pb.method(c, "run", Type::Void, true);
//! let x = mb.local("x", Type::Ref(c));
//! mb.while_loop(|mb| {
//!     mb.new_object(x, c);
//! });
//! mb.finish();
//! let program = pb.finish();
//! assert_eq!(program.allocs().len(), 1);
//! ```

use crate::ids::{AllocSite, CallSite, ClassId, FieldId, LocalId, LoopId, MethodId};
use crate::program::{AllocInfo, CallInfo, Class, Field, Local, LoopInfo, Method, Program};
use crate::stmt::{BinOp, CallKind, Cond, Operand, SiteLabel, Stmt};
use crate::types::Type;

/// Builder for a whole [`Program`].
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// Creates a builder over a fresh program (containing only `Object`).
    pub fn new() -> Self {
        ProgramBuilder {
            program: Program::new(),
        }
    }

    /// Resumes building on top of an existing program, e.g. to synthesize
    /// an artificial driver loop around a checkable region.
    pub fn resume(program: Program) -> Self {
        ProgramBuilder { program }
    }

    /// Adds an application class extending `superclass`
    /// (or `Object` when `None`).
    pub fn add_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        self.add_class_full(name, superclass, false)
    }

    /// Adds a standard-library class; see [`Class::is_library`].
    pub fn add_library_class(&mut self, name: &str, superclass: Option<ClassId>) -> ClassId {
        self.add_class_full(name, superclass, true)
    }

    fn add_class_full(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        is_library: bool,
    ) -> ClassId {
        self.program.push_class(Class {
            name: name.to_string(),
            superclass: Some(superclass.unwrap_or(ClassId(0))),
            fields: Vec::new(),
            methods: Vec::new(),
            is_library,
        })
    }

    /// Adds a field to `owner`.
    pub fn add_field(&mut self, owner: ClassId, name: &str, ty: Type, is_static: bool) -> FieldId {
        self.program.push_field(Field {
            name: name.to_string(),
            owner: Some(owner),
            ty,
            is_static,
        })
    }

    /// Starts building a method with no parameters.
    pub fn method(
        &mut self,
        owner: ClassId,
        name: &str,
        ret_ty: Type,
        is_static: bool,
    ) -> MethodBuilder<'_> {
        self.method_with_params(owner, name, ret_ty, is_static, &[])
    }

    /// Starts building a method with the given `(name, type)` parameters.
    pub fn method_with_params(
        &mut self,
        owner: ClassId,
        name: &str,
        ret_ty: Type,
        is_static: bool,
        params: &[(&str, Type)],
    ) -> MethodBuilder<'_> {
        let mut locals = Vec::new();
        if !is_static {
            locals.push(Local {
                name: "this".to_string(),
                ty: Type::Ref(owner),
            });
        }
        for (pname, pty) in params {
            locals.push(Local {
                name: (*pname).to_string(),
                ty: pty.clone(),
            });
        }
        let id = self.program.push_method(Method {
            name: name.to_string(),
            owner,
            is_static,
            param_count: params.len(),
            ret_ty,
            locals,
            body: Vec::new(),
        });
        MethodBuilder {
            pb: self,
            method: id,
            frames: vec![Vec::new()],
            locals_taken: 0,
            temp_counter: 0,
            next_label: SiteLabel::None,
        }
    }

    /// Designates the program entry point.
    pub fn set_entry(&mut self, method: MethodId) {
        self.program.set_entry(method);
    }

    /// Re-opens an existing method (declared earlier with an empty body)
    /// for body construction. Used by the frontend's two-pass lowering.
    pub fn resume_method(&mut self, method: MethodId) -> MethodBuilder<'_> {
        let temp_counter = self.program.method(method).locals.len();
        MethodBuilder {
            pb: self,
            method,
            frames: vec![Vec::new()],
            locals_taken: 0,
            temp_counter,
            next_label: SiteLabel::None,
        }
    }

    /// Replaces the superclass of `class`.
    ///
    /// The frontend declares all classes first (defaulting to `Object`) and
    /// patches `extends` clauses once every name is known.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn patch_superclass(&mut self, class: ClassId, superclass: ClassId) {
        assert!(superclass.index() < self.program.classes().len());
        self.program.class_mut(class).superclass = Some(superclass);
    }

    /// Read-only access to the program under construction.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Finishes construction and returns the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// Builder for a single method body.
///
/// Obtained from [`ProgramBuilder::method`]. Simple statements are appended
/// with dedicated methods; `if` / `while` take closures that build the
/// nested bodies. Call [`MethodBuilder::finish`] when the body is complete.
#[derive(Debug)]
pub struct MethodBuilder<'pb> {
    pb: &'pb mut ProgramBuilder,
    method: MethodId,
    /// Stack of statement lists: the innermost open block is last.
    frames: Vec<Vec<Stmt>>,
    locals_taken: usize,
    temp_counter: usize,
    next_label: SiteLabel,
}

impl<'pb> MethodBuilder<'pb> {
    /// The id of the method being built.
    pub fn id(&self) -> MethodId {
        self.method
    }

    /// The `this` local (instance methods only).
    ///
    /// # Panics
    ///
    /// Panics when called on a static method's builder.
    pub fn this(&self) -> LocalId {
        self.pb
            .program
            .method(self.method)
            .this_local()
            .expect("static method has no `this`")
    }

    /// The local of the `i`-th parameter.
    pub fn param(&self, i: usize) -> LocalId {
        self.pb.program.method(self.method).param_local(i)
    }

    /// Declares a named local variable.
    pub fn local(&mut self, name: &str, ty: Type) -> LocalId {
        let m = self.pb.program.method_mut(self.method);
        let id = LocalId::from_index(m.locals.len());
        m.locals.push(Local {
            name: name.to_string(),
            ty,
        });
        id
    }

    /// Declares a compiler temporary.
    pub fn temp(&mut self, ty: Type) -> LocalId {
        self.temp_counter += 1;
        let name = format!("$t{}", self.temp_counter);
        self.local(&name, ty)
    }

    fn push(&mut self, stmt: Stmt) {
        self.frames
            .last_mut()
            .expect("builder frame stack is never empty")
            .push(stmt);
    }

    /// Attaches a ground-truth label to the *next* allocation statement.
    pub fn label_next(&mut self, label: SiteLabel) {
        self.next_label = label;
    }

    fn fresh_alloc(&mut self, ty: Type, describe: String) -> AllocSite {
        let label = std::mem::take(&mut self.next_label);
        self.pb.program.push_alloc(AllocInfo {
            method: self.method,
            ty,
            label,
            describe,
        })
    }

    /// Appends `dst = new C`.
    pub fn new_object(&mut self, dst: LocalId, class: ClassId) -> AllocSite {
        let name = self.pb.program.class(class).name.clone();
        let site = self.fresh_alloc(Type::Ref(class), format!("new {name}"));
        self.push(Stmt::New { dst, class, site });
        site
    }

    /// Appends `dst = new T[len]`.
    pub fn new_array(&mut self, dst: LocalId, elem: Type, len: Operand) -> AllocSite {
        let site = self.fresh_alloc(elem.clone().into_array(), format!("new {elem:?}[]"));
        self.push(Stmt::NewArray {
            dst,
            elem,
            len,
            site,
        });
        site
    }

    /// Appends `dst = src`.
    pub fn assign(&mut self, dst: LocalId, src: LocalId) {
        self.push(Stmt::Assign { dst, src });
    }

    /// Appends `dst = null`.
    pub fn assign_null(&mut self, dst: LocalId) {
        self.push(Stmt::AssignNull { dst });
    }

    /// Appends `dst = value`.
    pub fn const_int(&mut self, dst: LocalId, value: i64) {
        self.push(Stmt::Const { dst, value });
    }

    /// Appends `dst = nondet()`.
    pub fn nondet_bool(&mut self, dst: LocalId) {
        self.push(Stmt::NonDetBool { dst });
    }

    /// Read-only access to the program under construction, including the
    /// partially built current method.
    pub fn program(&self) -> &Program {
        &self.pb.program
    }

    /// Appends `dst = lhs OP rhs`.
    pub fn binop(&mut self, dst: LocalId, op: BinOp, lhs: Operand, rhs: Operand) {
        self.push(Stmt::BinOp { dst, op, lhs, rhs });
    }

    /// Appends `dst = base.field`.
    pub fn load(&mut self, dst: LocalId, base: LocalId, field: FieldId) {
        self.push(Stmt::Load { dst, base, field });
    }

    /// Appends `base.field = src`.
    pub fn store(&mut self, base: LocalId, field: FieldId, src: LocalId) {
        self.push(Stmt::Store { base, field, src });
    }

    /// Appends `dst = base[index]`.
    pub fn array_load(&mut self, dst: LocalId, base: LocalId, index: Operand) {
        self.push(Stmt::ArrayLoad { dst, base, index });
    }

    /// Appends `base[index] = src`.
    pub fn array_store(&mut self, base: LocalId, index: Operand, src: LocalId) {
        self.push(Stmt::ArrayStore { base, index, src });
    }

    /// Appends `dst = Field` (static load).
    pub fn static_load(&mut self, dst: LocalId, field: FieldId) {
        self.push(Stmt::StaticLoad { dst, field });
    }

    /// Appends `Field = src` (static store).
    pub fn static_store(&mut self, field: FieldId, src: LocalId) {
        self.push(Stmt::StaticStore { field, src });
    }

    /// Appends a virtual call `dst = receiver.m(args)`.
    pub fn call_virtual(
        &mut self,
        dst: Option<LocalId>,
        receiver: LocalId,
        method: MethodId,
        args: &[LocalId],
    ) -> CallSite {
        self.call(dst, CallKind::Virtual, Some(receiver), method, args)
    }

    /// Appends a static call `dst = C.m(args)`.
    pub fn call_static(
        &mut self,
        dst: Option<LocalId>,
        method: MethodId,
        args: &[LocalId],
    ) -> CallSite {
        self.call(dst, CallKind::Static, None, method, args)
    }

    /// Appends a non-virtual instance call (constructor / `super`).
    pub fn call_special(
        &mut self,
        dst: Option<LocalId>,
        receiver: LocalId,
        method: MethodId,
        args: &[LocalId],
    ) -> CallSite {
        self.call(dst, CallKind::Special, Some(receiver), method, args)
    }

    fn call(
        &mut self,
        dst: Option<LocalId>,
        kind: CallKind,
        receiver: Option<LocalId>,
        method: MethodId,
        args: &[LocalId],
    ) -> CallSite {
        let site = self.pb.program.push_call(CallInfo {
            method: self.method,
        });
        self.push(Stmt::Call {
            dst,
            kind,
            method,
            receiver,
            args: args.to_vec(),
            site,
        });
        site
    }

    /// Appends `return` / `return v`.
    pub fn ret(&mut self, value: Option<LocalId>) {
        self.push(Stmt::Return(value));
    }

    /// Appends `break`.
    pub fn brk(&mut self) {
        self.push(Stmt::Break);
    }

    /// Appends `continue`.
    pub fn cont(&mut self) {
        self.push(Stmt::Continue);
    }

    /// Appends `if (cond) { then } else { otherwise }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) {
        self.frames.push(Vec::new());
        then_build(self);
        let then_branch = self.frames.pop().expect("then frame");
        self.frames.push(Vec::new());
        else_build(self);
        let else_branch = self.frames.pop().expect("else frame");
        self.push(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
    }

    /// Appends `if (*) { then } else { otherwise }` with an opaque condition.
    pub fn if_nondet(
        &mut self,
        then_build: impl FnOnce(&mut Self),
        else_build: impl FnOnce(&mut Self),
    ) {
        self.if_else(Cond::NonDet, then_build, else_build);
    }

    /// Appends `while (cond) { body }` and returns the loop id.
    pub fn while_cond(&mut self, cond: Cond, body_build: impl FnOnce(&mut Self)) -> LoopId {
        let id = self.pb.program.push_loop(LoopInfo {
            method: self.method,
            synthetic: false,
        });
        self.frames.push(Vec::new());
        body_build(self);
        let body = self.frames.pop().expect("loop frame");
        self.push(Stmt::While { id, cond, body });
        id
    }

    /// Appends `while (*) { body }` with an opaque condition.
    pub fn while_loop(&mut self, body_build: impl FnOnce(&mut Self)) -> LoopId {
        self.while_cond(Cond::NonDet, body_build)
    }

    /// Opens an explicit statement frame. Statements appended afterwards
    /// accumulate in the frame until [`MethodBuilder::end_frame`] returns
    /// them. This is the non-closure alternative to
    /// [`MethodBuilder::if_else`] / [`MethodBuilder::while_cond`], used by
    /// the frontend's recursive lowering.
    pub fn begin_frame(&mut self) {
        self.frames.push(Vec::new());
    }

    /// Closes the innermost explicit frame and returns its statements.
    ///
    /// # Panics
    ///
    /// Panics if no frame is open.
    pub fn end_frame(&mut self) -> Vec<Stmt> {
        assert!(self.frames.len() > 1, "no open frame");
        self.frames.pop().expect("frame stack underflow")
    }

    /// Appends an `if` built from pre-assembled branch bodies
    /// (see [`MethodBuilder::begin_frame`]).
    pub fn push_if(&mut self, cond: Cond, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) {
        self.push(Stmt::If {
            cond,
            then_branch,
            else_branch,
        });
    }

    /// Appends a `while` built from a pre-assembled body and returns its
    /// loop id.
    pub fn push_while(&mut self, cond: Cond, body: Vec<Stmt>) -> LoopId {
        let id = self.pb.program.push_loop(LoopInfo {
            method: self.method,
            synthetic: false,
        });
        self.push(Stmt::While { id, cond, body });
        id
    }

    /// Appends a counted loop `i = 0; while (i < n) { body; i = i + 1 }`
    /// and returns `(loop id, counter local)`.
    pub fn counted_loop(&mut self, n: i64, body_build: impl FnOnce(&mut Self, LocalId)) -> LoopId {
        let i = self.temp(Type::Int);
        self.const_int(i, 0);
        self.while_cond(
            Cond::Cmp {
                op: BinOp::Lt,
                lhs: Operand::Local(i),
                rhs: Operand::Const(n),
            },
            |mb| {
                body_build(mb, i);
                mb.binop(i, BinOp::Add, Operand::Local(i), Operand::Const(1));
            },
        )
    }

    /// Finishes the body and writes it into the program.
    ///
    /// # Panics
    ///
    /// Panics if a structured frame was left open (cannot happen through the
    /// closure API) or locals were leaked.
    pub fn finish(mut self) {
        assert_eq!(self.frames.len(), 1, "unclosed structured frame");
        let body = self.frames.pop().expect("root frame");
        let _ = self.locals_taken;
        self.pb.program.method_mut(self.method).body = body;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_structure() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        let lp = mb.while_loop(|mb| {
            mb.if_nondet(
                |mb| {
                    mb.new_object(x, c);
                },
                |mb| {
                    mb.assign_null(x);
                },
            );
        });
        mb.finish();
        let p = pb.finish();
        assert_eq!(p.loops().len(), 1);
        assert_eq!(p.loop_info(lp).method, p.method_by_path("C.m").unwrap());
        let body = &p.methods()[p.method_by_path("C.m").unwrap().index()].body;
        assert_eq!(body.len(), 1);
        match &body[0] {
            Stmt::While { body, .. } => match &body[0] {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    assert!(matches!(then_branch[0], Stmt::New { .. }));
                    assert!(matches!(else_branch[0], Stmt::AssignNull { .. }));
                }
                other => panic!("expected if, got {other:?}"),
            },
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn labels_attach_to_next_allocation() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.label_next(SiteLabel::Leak);
        let s1 = mb.new_object(x, c);
        let s2 = mb.new_object(x, c);
        mb.finish();
        let p = pb.finish();
        assert!(p.alloc(s1).label.is_leak());
        assert_eq!(p.alloc(s2).label, SiteLabel::None);
        assert_eq!(p.alloc(s1).describe, "new C");
    }

    #[test]
    fn counted_loop_shape() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Ref(c));
        mb.counted_loop(10, |mb, _i| {
            mb.new_object(x, c);
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let body = &p.method(m).body;
        // const-int init + while
        assert_eq!(body.len(), 2);
        match &body[1] {
            Stmt::While { body, cond, .. } => {
                assert!(matches!(cond, Cond::Cmp { op: BinOp::Lt, .. }));
                // new + increment
                assert_eq!(body.len(), 2);
            }
            other => panic!("expected while, got {other:?}"),
        }
    }

    #[test]
    fn params_and_this() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mb = pb.method_with_params(c, "m", Type::Void, false, &[("p", Type::Int)]);
        assert_eq!(mb.this(), LocalId(0));
        assert_eq!(mb.param(0), LocalId(1));
        mb.finish();

        let mb = pb.method_with_params(c, "s", Type::Void, true, &[("p", Type::Int)]);
        assert_eq!(mb.param(0), LocalId(0));
        mb.finish();
    }

    #[test]
    fn calls_are_registered() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut callee = pb.method(c, "f", Type::Void, false);
        callee.ret(None);
        let callee_id = callee.id();
        callee.finish();
        let mut mb = pb.method(c, "g", Type::Void, false);
        let this = mb.this();
        let cs = mb.call_virtual(None, this, callee_id, &[]);
        mb.finish();
        let p = pb.finish();
        assert_eq!(p.calls().len(), 1);
        assert_eq!(p.call(cs).method, p.method_by_path("C.g").unwrap());
    }
}
