//! A Java-like three-address intermediate representation (IR).
//!
//! This crate is the substrate on which the LeakChecker reproduction is
//! built. The paper's tool operates on Soot's Jimple IR for Java bytecode;
//! this crate plays the same role: it defines a small object-oriented
//! language with classes, instance and static fields, virtual and static
//! methods, and *structured* statement bodies (`while` loops and `if`
//! branches are kept as trees rather than lowered to a control-flow graph).
//!
//! Keeping loops structured matches the formal while-language of the paper
//! (Section 3, Figures 2 and 3): the type-and-effect system iterates over the
//! body of an explicitly designated loop, and the concrete semantics indexes
//! run-time objects by the iteration of the loop in which they were created.
//! A conventional basic-block CFG together with dominator-based natural-loop
//! discovery is still available via [`cfg`] and [`loops`] for clients that
//! need them.
//!
//! # Architecture
//!
//! * [`program`] — the [`Program`] container: classes, fields, methods,
//!   allocation-site and call-site tables.
//! * [`stmt`] — statements, conditions and operands.
//! * [`types`] — the [`Type`] enum (`int`, `boolean`, references, arrays).
//! * [`builder`] — ergonomic construction of programs from Rust code.
//! * [`visit`] — recursive statement walkers.
//! * [`cfg`] / [`loops`] — flattened control-flow graph, dominators and
//!   natural loops.
//! * [`pretty`] — a human-readable printer for whole programs.
//! * [`validate`] — structural well-formedness checks.
//!
//! # Example
//!
//! Build the two-statement program `b = new A(); while (*) { c = new A(); }`
//! and print it:
//!
//! ```
//! use leakchecker_ir::builder::ProgramBuilder;
//! use leakchecker_ir::types::Type;
//!
//! let mut pb = ProgramBuilder::new();
//! let class_a = pb.add_class("A", None);
//! let main_class = pb.add_class("Main", None);
//! let mut mb = pb.method(main_class, "main", Type::Void, true);
//! let b = mb.local("b", Type::Ref(class_a));
//! let c = mb.local("c", Type::Ref(class_a));
//! mb.new_object(b, class_a);
//! mb.while_loop(|mb| {
//!     mb.new_object(c, class_a);
//! });
//! mb.finish();
//! let program = pb.finish();
//! assert_eq!(program.loops().len(), 1);
//! let text = leakchecker_ir::pretty::print_program(&program);
//! assert!(text.contains("while"));
//! ```

pub mod builder;
pub mod cfg;
pub mod ids;
pub mod loops;
pub mod pretty;
pub mod program;
pub mod stmt;
pub mod types;
pub mod validate;
pub mod visit;

pub use ids::{AllocSite, CallSite, ClassId, FieldId, LocalId, LoopId, MethodId};
pub use program::{AllocInfo, CallInfo, Class, Field, Local, LoopInfo, Method, Program};
pub use stmt::{BinOp, CallKind, Cond, Operand, SiteLabel, Stmt};
pub use types::Type;
