//! Typed index identifiers for IR entities.
//!
//! Every entity in a [`crate::Program`] — classes, fields, methods, locals,
//! allocation sites, call sites, loops — is stored in a flat table and
//! referred to by a typed `u32` index. Newtypes keep the indices from being
//! mixed up ([C-NEWTYPE]).
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:expr) => {
        $(#[$meta])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the identifier as a `usize` index into the owning table.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a table index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifier of a class declaration in a [`crate::Program`].
    ClassId,
    "class#"
);
define_id!(
    /// Identifier of a field declaration (instance or static).
    ///
    /// `FieldId(0)` is always the distinguished array-element pseudo-field
    /// `elem`, mirroring the paper's treatment of array stores and loads as
    /// accesses to a smashed `elem` field.
    FieldId,
    "field#"
);
define_id!(
    /// Identifier of a method declaration.
    MethodId,
    "method#"
);
define_id!(
    /// Identifier of a local variable slot within a single method.
    ///
    /// For instance methods, `LocalId(0)` is the implicit `this` receiver
    /// and parameters occupy the following slots.
    LocalId,
    "v"
);
define_id!(
    /// Identifier of a static allocation site (a `new` expression).
    ///
    /// Allocation sites are the static abstraction of heap objects used
    /// throughout the paper: leak reports name allocation sites, and the
    /// extended recency abstraction assigns an abstract iteration value to
    /// each site.
    AllocSite,
    "alloc#"
);
define_id!(
    /// Identifier of a call site (an `invoke` statement).
    ///
    /// Call sites are the parentheses of the CFL-reachability formulation:
    /// a context-sensitive path must match the entry `(i` and exit `)i` of
    /// each traversed call site `i`.
    CallSite,
    "call#"
);
define_id!(
    /// Identifier of a loop (a structured `while` statement).
    ///
    /// The detector is pointed at one designated loop; objects allocated
    /// during its iterations are the "inside" objects of the analysis.
    LoopId,
    "loop#"
);

/// The distinguished pseudo-field used for array element accesses.
///
/// Array loads and stores are modeled as accesses to this single smashed
/// field, exactly as in the paper (`a34.elem` in the Figure 1 discussion).
pub const ARRAY_ELEM_FIELD: FieldId = FieldId(0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_round_trip() {
        let id = ClassId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(MethodId(1));
        set.insert(MethodId(2));
        set.insert(MethodId(1));
        assert_eq!(set.len(), 2);
        assert!(MethodId(1) < MethodId(2));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(AllocSite(7).to_string(), "alloc#7");
        assert_eq!(format!("{:?}", LoopId(3)), "loop#3");
        assert_eq!(LocalId(0).to_string(), "v0");
    }

    #[test]
    fn array_elem_field_is_zero() {
        assert_eq!(ARRAY_ELEM_FIELD.index(), 0);
    }
}
