//! Flattened control-flow graphs over structured method bodies.
//!
//! The analyses in this reproduction mostly consume the structured body
//! directly (the paper's type-and-effect system is defined over a structured
//! while-language). A conventional basic-block CFG is still useful — for
//! natural-loop discovery when the tool user has not designated a loop, and
//! for generic dataflow clients — so this module lowers a structured body to
//! blocks of simple statements connected by edges.

use crate::ids::MethodId;
use crate::program::Program;
use crate::stmt::Stmt;
use std::collections::HashMap;

/// Index of a basic block within a [`Cfg`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Index into [`Cfg::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A basic block: a maximal straight-line sequence of simple statements.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Indices into the flattened statement list of the owning [`Cfg`].
    pub stmts: Vec<usize>,
    /// Successor blocks.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// A control-flow graph for one method.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// The method this CFG was built from.
    pub method: MethodId,
    /// Flattened copies of the method's simple statements
    /// (control statements are represented by edges only).
    pub stmts: Vec<Stmt>,
    /// Basic blocks; block 0 is the entry, block 1 the exit.
    pub blocks: Vec<Block>,
}

/// Entry block id (always block 0).
pub const ENTRY: BlockId = BlockId(0);
/// Exit block id (always block 1).
pub const EXIT: BlockId = BlockId(1);

struct Builder {
    stmts: Vec<Stmt>,
    blocks: Vec<Block>,
    current: BlockId,
    /// (continue-target, break-target) for each open loop.
    loop_stack: Vec<(BlockId, BlockId)>,
    /// Whether the current block has been terminated (return/break/continue).
    terminated: bool,
}

impl Builder {
    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block::default());
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.index()].succs.push(to);
        self.blocks[to.index()].preds.push(from);
    }

    fn emit(&mut self, stmt: &Stmt) {
        if self.terminated {
            return;
        }
        let idx = self.stmts.len();
        self.stmts.push(stmt.clone());
        let cur = self.current;
        self.blocks[cur.index()].stmts.push(idx);
    }

    fn lower(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            if self.terminated {
                break;
            }
            match stmt {
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    let cond_block = self.current;
                    let then_entry = self.new_block();
                    let else_entry = self.new_block();
                    let join = self.new_block();
                    self.edge(cond_block, then_entry);
                    self.edge(cond_block, else_entry);

                    self.current = then_entry;
                    self.terminated = false;
                    self.lower(then_branch);
                    if !self.terminated {
                        let cur = self.current;
                        self.edge(cur, join);
                    }

                    self.current = else_entry;
                    self.terminated = false;
                    self.lower(else_branch);
                    if !self.terminated {
                        let cur = self.current;
                        self.edge(cur, join);
                    }

                    self.current = join;
                    self.terminated = false;
                }
                Stmt::While { body, .. } => {
                    let before = self.current;
                    let header = self.new_block();
                    let body_entry = self.new_block();
                    let after = self.new_block();
                    self.edge(before, header);
                    self.edge(header, body_entry);
                    self.edge(header, after);
                    self.loop_stack.push((header, after));

                    self.current = body_entry;
                    self.terminated = false;
                    self.lower(body);
                    if !self.terminated {
                        let cur = self.current;
                        self.edge(cur, header);
                    }

                    self.loop_stack.pop();
                    self.current = after;
                    self.terminated = false;
                }
                Stmt::Return(_) => {
                    self.emit(stmt);
                    let cur = self.current;
                    self.edge(cur, EXIT);
                    self.terminated = true;
                }
                Stmt::Break => {
                    if let Some(&(_, after)) = self.loop_stack.last() {
                        let cur = self.current;
                        self.edge(cur, after);
                    }
                    self.terminated = true;
                }
                Stmt::Continue => {
                    if let Some(&(header, _)) = self.loop_stack.last() {
                        let cur = self.current;
                        self.edge(cur, header);
                    }
                    self.terminated = true;
                }
                simple => self.emit(simple),
            }
        }
    }
}

impl Cfg {
    /// Builds the CFG of `method`.
    pub fn build(program: &Program, method: MethodId) -> Cfg {
        let mut b = Builder {
            stmts: Vec::new(),
            blocks: Vec::new(),
            current: ENTRY,
            loop_stack: Vec::new(),
            terminated: false,
        };
        let entry = b.new_block();
        let exit = b.new_block();
        debug_assert_eq!(entry, ENTRY);
        debug_assert_eq!(exit, EXIT);
        b.lower(&program.method(method).body);
        if !b.terminated {
            let cur = b.current;
            b.edge(cur, EXIT);
        }
        Cfg {
            method,
            stmts: b.stmts,
            blocks: b.blocks,
        }
    }

    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Blocks reachable from the entry, in reverse postorder.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut post = Vec::new();
        // Iterative DFS with an explicit stack of (block, next-successor).
        let mut stack = vec![(ENTRY, 0usize)];
        visited[ENTRY.index()] = true;
        while let Some(&mut (block, ref mut next)) = stack.last_mut() {
            let succs = &self.blocks[block.index()].succs;
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(block);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Computes immediate dominators for all blocks reachable from entry,
    /// using the classic iterative algorithm (Cooper–Harvey–Kennedy).
    /// Unreachable blocks map to `None`.
    pub fn dominators(&self) -> Vec<Option<BlockId>> {
        let rpo = self.reverse_postorder();
        let mut order = HashMap::new();
        for (i, &b) in rpo.iter().enumerate() {
            order.insert(b, i);
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; self.blocks.len()];
        idom[ENTRY.index()] = Some(ENTRY);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let preds: Vec<BlockId> = self.blocks[b.index()]
                    .preds
                    .iter()
                    .copied()
                    .filter(|p| idom[p.index()].is_some() && order.contains_key(p))
                    .collect();
                let Some(&first) = preds.first() else {
                    continue;
                };
                let mut new_idom = first;
                for &p in &preds[1..] {
                    new_idom = intersect(&idom, &order, p, new_idom);
                }
                if idom[b.index()] != Some(new_idom) {
                    idom[b.index()] = Some(new_idom);
                    changed = true;
                }
            }
        }
        idom
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Discovers the natural loops of the CFG: for every back edge
    /// `t → h` (where `h` dominates `t`), the loop body is `h` plus every
    /// block that reaches `t` without passing through `h`. Loops sharing
    /// a header are merged. Returned headers are in block order.
    pub fn natural_loops(&self) -> Vec<NaturalLoop> {
        let idom = self.dominators();
        let mut loops: HashMap<BlockId, std::collections::BTreeSet<BlockId>> = HashMap::new();
        for (bi, block) in self.blocks.iter().enumerate() {
            let tail = BlockId(bi as u32);
            for &head in &block.succs {
                if self.dominates(&idom, head, tail) {
                    // Collect the loop body by walking predecessors from
                    // the tail until the header.
                    let body = loops.entry(head).or_default();
                    body.insert(head);
                    let mut stack = vec![tail];
                    while let Some(b) = stack.pop() {
                        if body.insert(b) {
                            stack.extend(self.blocks[b.index()].preds.iter().copied());
                        }
                    }
                }
            }
        }
        let mut out: Vec<NaturalLoop> = loops
            .into_iter()
            .map(|(header, body)| NaturalLoop {
                header,
                body: body.into_iter().collect(),
            })
            .collect();
        out.sort_by_key(|l| l.header);
        out
    }
}

/// A natural loop discovered from a back edge; see [`Cfg::natural_loops`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (dominates every block in the body).
    pub header: BlockId,
    /// All blocks in the loop, including the header, in block order.
    pub body: Vec<BlockId>,
}

fn intersect(
    idom: &[Option<BlockId>],
    order: &HashMap<BlockId, usize>,
    mut a: BlockId,
    mut b: BlockId,
) -> BlockId {
    while a != b {
        while order[&a] > order[&b] {
            a = idom[a.index()].expect("dominator of processed block");
        }
        while order[&b] > order[&a] {
            b = idom[b.index()].expect("dominator of processed block");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::types::Type;

    fn linear_program() -> (Program, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.const_int(x, 1);
        mb.const_int(x, 2);
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        (p, m)
    }

    #[test]
    fn linear_body_is_one_block() {
        let (p, m) = linear_program();
        let cfg = Cfg::build(&p, m);
        assert_eq!(cfg.blocks[ENTRY.index()].stmts.len(), 2);
        assert_eq!(cfg.blocks[ENTRY.index()].succs, vec![EXIT]);
    }

    #[test]
    fn if_produces_diamond() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.if_nondet(|mb| mb.const_int(x, 1), |mb| mb.const_int(x, 2));
        mb.const_int(x, 3);
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let cfg = Cfg::build(&p, m);
        // entry, exit, then, else, join
        assert_eq!(cfg.block_count(), 5);
        assert_eq!(cfg.blocks[ENTRY.index()].succs.len(), 2);
        let idom = cfg.dominators();
        // The join block is dominated by the entry.
        let join = cfg.blocks[ENTRY.index()].succs[0].index();
        assert!(cfg.dominates(&idom, ENTRY, BlockId(join as u32)));
    }

    #[test]
    fn while_produces_back_edge() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.while_loop(|mb| mb.const_int(x, 1));
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let cfg = Cfg::build(&p, m);
        // Find a back edge: a successor that dominates its source.
        let idom = cfg.dominators();
        let mut back_edges = 0;
        for (bi, block) in cfg.blocks.iter().enumerate() {
            for &s in &block.succs {
                if cfg.dominates(&idom, s, BlockId(bi as u32)) {
                    back_edges += 1;
                }
            }
        }
        assert_eq!(back_edges, 1);
    }

    #[test]
    fn return_terminates_block() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.ret(None);
        mb.const_int(x, 1); // dead code
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let cfg = Cfg::build(&p, m);
        // The dead statement is dropped.
        assert_eq!(cfg.stmts.len(), 1);
        assert!(matches!(cfg.stmts[0], Stmt::Return(None)));
    }

    #[test]
    fn natural_loops_found_for_while() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        let x = mb.local("x", Type::Int);
        mb.while_loop(|mb| {
            mb.const_int(x, 1);
            mb.while_loop(|mb| mb.const_int(x, 2));
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let cfg = Cfg::build(&p, m);
        let loops = cfg.natural_loops();
        assert_eq!(loops.len(), 2, "{loops:?}");
        // The outer loop's body contains the inner loop's header.
        let (outer, inner) = if loops[0].body.len() > loops[1].body.len() {
            (&loops[0], &loops[1])
        } else {
            (&loops[1], &loops[0])
        };
        assert!(outer.body.contains(&inner.header));
        for l in &loops {
            assert!(l.body.contains(&l.header));
        }
    }

    #[test]
    fn straight_line_code_has_no_natural_loops() {
        let (p, m) = linear_program();
        let cfg = Cfg::build(&p, m);
        assert!(cfg.natural_loops().is_empty());
    }

    #[test]
    fn break_and_continue_edges() {
        let mut pb = ProgramBuilder::new();
        let c = pb.add_class("C", None);
        let mut mb = pb.method(c, "m", Type::Void, true);
        mb.while_loop(|mb| {
            mb.if_nondet(|mb| mb.brk(), |mb| mb.cont());
        });
        mb.finish();
        let p = pb.finish();
        let m = p.method_by_path("C.m").unwrap();
        let cfg = Cfg::build(&p, m);
        let rpo = cfg.reverse_postorder();
        // All blocks reachable, exit included.
        assert!(rpo.contains(&EXIT));
    }
}
