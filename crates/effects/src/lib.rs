//! The type-and-effect system of the LeakChecker reproduction.
//!
//! This crate implements the formal core of the paper (Section 3): an
//! abstract interpretation over the structured IR that computes, for each
//! allocation site and a developer-designated loop,
//!
//! * an **extended recency abstraction** (ERA) value — see [`era::Era`];
//! * the **abstract heap effects**: the store set Ψ̃ and the load set Ω̃,
//!   from which the detector derives the transitive flows-out and
//!   flows-in relations.
//!
//! The implementation generalizes the formal single-site-or-`⊤` value
//! domain to a bounded set domain (configurable via
//! [`EffectConfig::type_set_bound`]; bound 1 recovers the formal system)
//! and handles method calls by bounded inlining over the call graph — the
//! paper's implementation delegates interprocedural reasoning to
//! CFL-reachability, which the `leakchecker` crate layers on top.
//!
//! # Example
//!
//! The canonical leak pattern — each iteration stores a fresh object into
//! a field of an outside object that is never read again:
//!
//! ```
//! use leakchecker_frontend::compile;
//! use leakchecker_callgraph::{Algorithm, CallGraph};
//! use leakchecker_effects::{analyze, EffectConfig, Era};
//!
//! let unit = compile(r#"
//!     class Item { }
//!     class Holder { Item item; }
//!     class Main {
//!         static void main() {
//!             Holder h = new Holder();
//!             @check while (nondet()) {
//!                 Item it = new Item();
//!                 h.item = it;
//!             }
//!         }
//!     }
//! "#).unwrap();
//! let cg = CallGraph::build(&unit.program, Algorithm::Rta);
//! let summary = analyze(&unit.program, &cg, unit.checked_loops[0],
//!                       EffectConfig::default());
//! // The Item site escapes and never flows back: ERA ⊤̂.
//! let item_site = unit.program.allocs().iter().enumerate()
//!     .find(|(_, a)| a.describe == "new Item").map(|(i, _)| i).unwrap();
//! assert_eq!(summary.era(leakchecker_ir::AllocSite(item_site as u32)), Era::Top);
//! ```

pub mod analysis;
pub mod domain;
pub mod era;
mod partition;

pub use analysis::{analyze, analyze_from, EffectConfig, EffectSummary};
pub use domain::{AbsEffect, AbsType, EffectBase, TypeKey, Val};
pub use era::Era;

// Hidden re-exports for the lattice-law property suite (the algebraic
// preconditions the parallel Jacobi merge relies on). Not a stable API.
#[doc(hidden)]
pub use analysis::{age_env, age_heap_map, gen_of, join_env, Env, Gen, HeapKey};

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::{Algorithm, CallGraph};
    use leakchecker_frontend::compile;
    use leakchecker_ir::ids::AllocSite;
    use leakchecker_ir::Program;

    struct Case {
        program: Program,
        summary: EffectSummary,
    }

    impl Case {
        fn new(src: &str) -> Case {
            Self::with_config(src, EffectConfig::default())
        }

        fn with_config(src: &str, config: EffectConfig) -> Case {
            let unit = compile(src).unwrap();
            let cg = CallGraph::build(&unit.program, Algorithm::Rta);
            assert_eq!(unit.checked_loops.len(), 1, "test needs one @check loop");
            let summary = analyze(&unit.program, &cg, unit.checked_loops[0], config);
            Case {
                program: unit.program,
                summary,
            }
        }

        /// Finds the allocation site by its `new <Class>` description.
        fn site(&self, describe: &str) -> AllocSite {
            let hits: Vec<AllocSite> = self
                .program
                .allocs()
                .iter()
                .enumerate()
                .filter(|(_, a)| a.describe == describe)
                .map(|(i, _)| AllocSite::from_index(i))
                .collect();
            assert_eq!(hits.len(), 1, "ambiguous or missing site {describe}");
            hits[0]
        }

        fn era_of(&self, describe: &str) -> Era {
            self.summary.era(self.site(describe))
        }
    }

    /// The worked example of Section 3.1: four sites with ERAs 0̂, ĉ, f̂, ⊤̂.
    ///
    /// `b` holds an outside object; each iteration allocates `c` (never
    /// escapes), `d` (escapes into `b.g`, loaded back unconditionally next
    /// iteration) and `e` (escapes into `d.h`, loaded back only on one
    /// branch).
    #[test]
    fn section_3_1_worked_example() {
        let case = Case::new(
            "class O1 { O3 g; }
             class O3 { O4 h; }
             class O4 { }
             class O2 { }
             class Main {
               static void main() {
                 O1 b = new O1();
                 @check while (nondet()) {
                   O2 c = new O2();
                   O3 d = new O3();
                   O4 e = new O4();
                   O3 m = b.g;
                   if (nondet()) {
                     if (m != null) {
                       O4 n = m.h;
                     }
                   }
                   if (nondet()) {
                     b.g = d;
                     d.h = e;
                   }
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new O1"), Era::Outside, "b is outside");
        assert_eq!(case.era_of("new O2"), Era::Current, "c is iteration-local");
        assert_eq!(case.era_of("new O3"), Era::Future, "d flows back via b.g");
        assert_eq!(
            case.era_of("new O4"),
            Era::Top,
            "e flows back only on one branch: joined to ⊤̂"
        );
    }

    #[test]
    fn canonical_leak_is_top() {
        let case = Case::new(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item it = new Item();
                   h.item = it;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
        assert_eq!(case.era_of("new Holder"), Era::Outside);
        // And the store effect into the outside holder was recorded.
        assert!(case
            .summary
            .stores
            .iter()
            .any(|e| e.inside_loop && e.base.era() == Era::Outside));
    }

    #[test]
    fn carried_over_object_is_future() {
        // display/process pattern: each iteration reads the previous
        // iteration's object before overwriting the field.
        let case = Case::new(
            "class Order { }
             class Tx { Order curr; }
             class Main {
               static void main() {
                 Tx t = new Tx();
                 @check while (nondet()) {
                   Order prev = t.curr;
                   Order o = new Order();
                   t.curr = o;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Order"), Era::Future);
    }

    #[test]
    fn iteration_local_structure_stays_current() {
        // An iteration-local container holding an iteration-local item:
        // the heap cell dies with its container, so nothing is ⊤̂.
        let case = Case::new(
            "class Item { }
             class Bag { Item item; }
             class Main {
               static void main() {
                 @check while (nondet()) {
                   Bag b = new Bag();
                   Item it = new Item();
                   b.item = it;
                   Item got = b.item;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Bag"), Era::Current);
        assert_eq!(case.era_of("new Item"), Era::Current);
    }

    #[test]
    fn escape_through_static_field_is_top() {
        let case = Case::new(
            "class Item { }
             class Registry { static Item last; }
             class Main {
               static void main() {
                 @check while (nondet()) {
                   Item it = new Item();
                   Registry.last = it;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
    }

    #[test]
    fn static_field_read_back_is_future() {
        let case = Case::new(
            "class Item { }
             class Registry { static Item last; }
             class Main {
               static void main() {
                 @check while (nondet()) {
                   Item prev = Registry.last;
                   Item it = new Item();
                   Registry.last = it;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Future);
    }

    #[test]
    fn interprocedural_escape_through_callee() {
        // The store into the outside object happens inside a callee.
        let case = Case::new(
            "class Item { }
             class Holder {
               Item item;
               void put(Item it) { this.item = it; }
             }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item it = new Item();
                   h.put(it);
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
    }

    #[test]
    fn interprocedural_allocation_in_callee() {
        // The allocation happens inside a callee called from the loop.
        let case = Case::new(
            "class Item { }
             class Factory {
               static Item make() { Item it = new Item(); return it; }
             }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item it = Factory.make();
                   h.item = it;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
        assert!(case.summary.inside_sites.contains(&case.site("new Item")));
    }

    #[test]
    fn transitive_escape_marks_members() {
        // item stored into node, node stored into outside holder:
        // both node and item escape and never flow back.
        let case = Case::new(
            "class Item { }
             class Node { Item item; }
             class Holder { Node node; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Node n = new Node();
                   Item it = new Item();
                   n.item = it;
                   h.node = n;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Node"), Era::Top);
        assert_eq!(case.era_of("new Item"), Era::Top);
    }

    #[test]
    fn array_escape_is_tracked_via_elem() {
        let case = Case::new(
            "class Item { }
             class Main {
               static void main() {
                 Item[] store = new Item[64];
                 int i = 0;
                 @check while (nondet()) {
                   Item it = new Item();
                   store[i] = it;
                   i = i + 1;
                 }
               }
             }",
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
    }

    #[test]
    fn paper_domain_bound_one_collapses_to_top_type() {
        // With the formal bound-1 domain, a variable holding objects from
        // two sites becomes ⊤; the analysis stays sound (reports ⊤̂ for
        // both sites via the conservative ⊤-base store).
        let case = Case::with_config(
            "class A { }
             class Holder { A a; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   A x = new A();
                   A y = new A();
                   A pick = x;
                   if (nondet()) { pick = y; }
                   h.a = pick;
                 }
               }
             }",
            EffectConfig {
                type_set_bound: 1,
                ..EffectConfig::default()
            },
        );
        // Both A sites exist; under bound 1 the store records a ⊤ or
        // single-site base/value. The sites must not be classified ĉ
        // (they escape): allow f̂ or ⊤̂.
        for (i, a) in case.program.allocs().iter().enumerate() {
            if a.describe == "new A" {
                let era = case.summary.era(AllocSite::from_index(i));
                assert!(era == Era::Top || era == Era::Future, "era = {era}");
            }
        }
    }

    /// Pins the designated loop's convergence criterion (environment +
    /// heap + effect-log lengths — deliberately stricter than the plain
    /// loop's environment + heap; see `exec_plain_loop`'s docs). The
    /// exact round counts below encode that criterion: any change to
    /// what the fixpoint watches shows up as a different `rounds` value
    /// on one of these canonical subjects.
    #[test]
    fn designated_loop_round_counts_are_pinned() {
        // Canonical leak: round 1 discovers the store, round 2 ages it
        // to ⊤̂ (heap + effect log change), round 3 confirms stability.
        let leak = Case::new(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item it = new Item();
                   h.item = it;
                 }
               }
             }",
        );
        assert_eq!(leak.summary.rounds, 3, "canonical leak");
        assert_eq!(leak.summary.regions, 0, "sequential path");

        // Carry-over: the flow-back refinement needs one aged round to
        // re-establish f̂, then one confirming round.
        let carry = Case::new(
            "class Order { }
             class Tx { Order curr; }
             class Main {
               static void main() {
                 Tx t = new Tx();
                 @check while (nondet()) {
                   Order prev = t.curr;
                   Order o = new Order();
                   t.curr = o;
                 }
               }
             }",
        );
        assert_eq!(carry.summary.rounds, 3, "carry-over");

        // Iteration-local body: nothing survives aging, so round 2
        // already confirms round 1's state.
        let local = Case::new(
            "class Item { }
             class Main {
               static void main() {
                 @check while (nondet()) {
                   Item it = new Item();
                 }
               }
             }",
        );
        assert_eq!(local.summary.rounds, 2, "iteration-local");
    }

    /// A plain (non-designated) loop nested in the designated one uses
    /// the looser env+heap criterion and no aging: it must neither bump
    /// the designated round counter nor trip truncation, however many
    /// effects its iterations append to the shared logs.
    #[test]
    fn nested_plain_loop_converges_without_designated_rounds() {
        let case = Case::new(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   while (nondet()) {
                     Item it = new Item();
                     h.item = it;
                   }
                 }
               }
             }",
        );
        assert!(!case.summary.truncated, "plain fixpoint must converge");
        assert_eq!(
            case.summary.rounds, 3,
            "rounds counts designated iterations only"
        );
        assert_eq!(case.era_of("new Item"), Era::Top);
    }

    #[test]
    fn truncation_is_reported_for_recursion() {
        let case = Case::new(
            "class Main {
               static void spin(int n) { Main.spin(n - 1); }
               static void main() {
                 @check while (nondet()) {
                   Main.spin(3);
                 }
               }
             }",
        );
        assert!(case.summary.truncated);
    }

    #[test]
    fn effect_sets_distinguish_inside_and_outside() {
        let case = Case::new(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 Item setup = new Item();
                 h.item = setup;
                 @check while (nondet()) {
                   Item it = new Item();
                   h.item = it;
                 }
               }
             }",
        );
        assert!(case.summary.stores.iter().any(|e| !e.inside_loop));
        assert!(case.summary.stores.iter().any(|e| e.inside_loop));
    }
}
