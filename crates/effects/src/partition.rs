//! Region partitioning for the parallel (Jacobi) designated-loop rounds.
//!
//! The sequential fixpoint walks the loop body statement by statement
//! (Gauss–Seidel: statement *i* sees the heap and environment updates of
//! statements *< i* within the same abstract iteration). To run the body
//! as independent snapshot-reading regions and still produce the *exact*
//! sequential state after every round — not just the same fixpoint — the
//! partition must guarantee that no abstract fact can flow between two
//! regions **within** one iteration.
//!
//! Abstract facts cross statement boundaries through exactly two
//! channels: the current frame's locals, and abstract-heap cells (whose
//! keys embed the field being accessed). Two conservative static
//! conflict rules close both; statements are union-found into regions
//! over them:
//!
//! 1. **Local dataflow** — if any statement writes a local that another
//!    statement touches (reads *or* writes), all touchers merge. Only
//!    reference-typed locals count (see the truncation precondition
//!    below for why integer traffic — loop counters, dispatch
//!    arithmetic — is provably invisible).
//! 2. **Field footprints** — if any statement's transitive callee
//!    closure may *store* a reference field that another statement's
//!    closure touches, all touchers of that field merge. Heap keys are
//!    `(type, generation, field)` triples, so every cross-statement
//!    cell collision goes through a shared field; this rule therefore
//!    also covers collisions via shared callees (e.g. two statements
//!    inlining the same method that stores through `this`) and the `⊤`-
//!    base store/load paths, which enumerate every existing cell of one
//!    field. Fields that are only ever *loaded* stay shared: concurrent
//!    loads of an untouched cell commute, including their flow-back
//!    strong updates, which are idempotent rewrites of the same
//!    snapshot value.
//!
//!    Note that sharing *callees* per se does not merge: a method like
//!    an empty constructor inlined by every statement has no effect
//!    channel between regions (callee frames are private to their
//!    inlining; allocation-site facts are set-unions), so keying the
//!    partition on callee-set disjointness would needlessly serialize
//!    any program whose handlers allocate a common payload class.
//!
//! # The truncation precondition
//!
//! Both rules ignore integer-typed locals and fields. That is exact
//! only while no abstract value ever flows into them, which holds
//! precisely when the interpreter can never truncate a call (recursion
//! or inlining-depth cut) anywhere under the loop body: a cut returns
//! `⊤` into an arbitrary-typed destination, and from there `⊤` could
//! seep through integer locals and fields the rules do not watch.
//! Whether a cut is reachable is a property of the static call
//! structure alone (target sets come from the call graph, never from
//! abstract values), so [`partition`] decides it up front and returns a
//! single region — forcing the sequential path — whenever a cut is
//! possible. Truncating subjects were never going to parallelize well
//! anyway: their time goes into the cut-off re-analysis, not the loop
//! body fan-out.

use leakchecker_callgraph::CallGraph;
use leakchecker_ir::ids::{FieldId, LocalId, MethodId, ARRAY_ELEM_FIELD};
use leakchecker_ir::stmt::Stmt;
use leakchecker_ir::Program;
use std::collections::{BTreeMap, BTreeSet};

/// One independent region of the designated-loop body.
#[derive(Clone, Debug)]
pub(crate) struct Region {
    /// Indices into the loop body's top-level statement list, in
    /// original order.
    pub stmts: Vec<usize>,
    /// Reference locals some statement of the region may write. The
    /// round merge takes exactly these slots from the region's final
    /// environment; the partition guarantees no other region touches
    /// them.
    pub writes: BTreeSet<LocalId>,
}

/// The footprint of one top-level statement (its own frame accesses,
/// plus the field accesses of everything its callee closure can do).
#[derive(Default)]
struct Footprint {
    reads: BTreeSet<LocalId>,
    writes: BTreeSet<LocalId>,
    fields_loaded: BTreeSet<FieldId>,
    fields_stored: BTreeSet<FieldId>,
    /// Direct call targets, before closure.
    direct: Vec<MethodId>,
}

/// Per-method summary: direct callees and reference-field touches, used
/// to close footprints over the call graph and to bound the inlining
/// depth.
struct MethodSummary {
    callees: Vec<MethodId>,
    fields_loaded: BTreeSet<FieldId>,
    fields_stored: BTreeSet<FieldId>,
}

/// Is this field's content visible to the abstract interpreter? Under
/// the truncation precondition only reference fields can carry facts
/// (integer stores early-out on a `⊥` source, integer loads yield `⊥`).
/// The smashed array-element pseudo-field is conservatively a
/// reference.
fn field_is_reference(program: &Program, field: FieldId) -> bool {
    field == ARRAY_ELEM_FIELD || program.field(field).ty.is_reference()
}

/// Walks one statement tree of `method`'s frame, collecting the locals
/// and fields the abstract interpreter would touch and the direct call
/// targets. `If`/`While` conditions are skipped on purpose: the
/// abstract semantics never evaluates them, and `Const`/`NonDetBool`/
/// `BinOp` are no-ops in the abstract domain.
fn walk_stmt(
    program: &Program,
    callgraph: &CallGraph,
    method: MethodId,
    stmt: &Stmt,
    fp: &mut Footprint,
) {
    let local_is_ref = |l: LocalId| program.method(method).locals[l.index()].ty.is_reference();
    let read = |fp: &mut Footprint, l: LocalId| {
        if local_is_ref(l) {
            fp.reads.insert(l);
        }
    };
    let write = |fp: &mut Footprint, l: LocalId| {
        if local_is_ref(l) {
            fp.writes.insert(l);
        }
    };
    match stmt {
        Stmt::New { dst, .. } | Stmt::NewArray { dst, .. } => write(fp, *dst),
        Stmt::Assign { dst, src } => {
            write(fp, *dst);
            read(fp, *src);
        }
        Stmt::AssignNull { dst } => write(fp, *dst),
        Stmt::Const { .. } | Stmt::NonDetBool { .. } | Stmt::BinOp { .. } | Stmt::Nop => {}
        Stmt::Store { base, field, src } => {
            read(fp, *base);
            read(fp, *src);
            if field_is_reference(program, *field) {
                fp.fields_stored.insert(*field);
            }
        }
        Stmt::ArrayStore { base, src, .. } => {
            read(fp, *base);
            read(fp, *src);
            fp.fields_stored.insert(ARRAY_ELEM_FIELD);
        }
        Stmt::Load { dst, base, field } => {
            write(fp, *dst);
            read(fp, *base);
            if field_is_reference(program, *field) {
                fp.fields_loaded.insert(*field);
            }
        }
        Stmt::ArrayLoad { dst, base, .. } => {
            write(fp, *dst);
            read(fp, *base);
            fp.fields_loaded.insert(ARRAY_ELEM_FIELD);
        }
        Stmt::StaticStore { field, src } => {
            // The interpreter guards static accesses by field type, so
            // integer statics are invisible even under truncation.
            if field_is_reference(program, *field) {
                read(fp, *src);
                fp.fields_stored.insert(*field);
            }
        }
        Stmt::StaticLoad { dst, field } => {
            if field_is_reference(program, *field) {
                write(fp, *dst);
                fp.fields_loaded.insert(*field);
            }
        }
        Stmt::Call {
            dst,
            method: named,
            receiver,
            args,
            site,
            ..
        } => {
            if let Some(d) = dst {
                write(fp, *d);
            }
            if let Some(r) = receiver {
                read(fp, *r);
            }
            for a in args {
                read(fp, *a);
            }
            // Mirror the interpreter's target resolution: call-graph
            // targets, falling back to the statically named method.
            let targets = callgraph.targets(*site);
            if targets.is_empty() {
                fp.direct.push(*named);
            } else {
                fp.direct.extend_from_slice(targets);
            }
        }
        Stmt::Return(v) => {
            if let Some(v) = v {
                read(fp, *v);
            }
        }
        Stmt::Break | Stmt::Continue => {}
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for s in then_branch.iter().chain(else_branch) {
                walk_stmt(program, callgraph, method, s, fp);
            }
        }
        Stmt::While { body, .. } => {
            for s in body {
                walk_stmt(program, callgraph, method, s, fp);
            }
        }
    }
}

fn method_summary(program: &Program, callgraph: &CallGraph, method: MethodId) -> MethodSummary {
    let mut fp = Footprint::default();
    for stmt in &program.method(method).body {
        walk_stmt(program, callgraph, method, stmt, &mut fp);
    }
    fp.direct.sort_unstable();
    fp.direct.dedup();
    MethodSummary {
        callees: fp.direct,
        fields_loaded: fp.fields_loaded,
        fields_stored: fp.fields_stored,
    }
}

/// Deepest chain of call-stack pushes reachable from inside `m`,
/// memoized over the (verified acyclic) closure.
fn depth_of(
    m: MethodId,
    summaries: &BTreeMap<MethodId, MethodSummary>,
    memo: &mut BTreeMap<MethodId, usize>,
) -> usize {
    if let Some(&d) = memo.get(&m) {
        return d;
    }
    let d = summaries[&m]
        .callees
        .clone()
        .into_iter()
        .map(|c| 1 + depth_of(c, summaries, memo))
        .max()
        .unwrap_or(0);
    memo.insert(m, d);
    d
}

/// Partitions the designated-loop body into independent regions (see
/// the module docs for the conflict rules and the truncation
/// precondition). `method` owns the frame the body's locals index into;
/// `call_stack` and `max_inline_depth` replicate the interpreter's cut
/// conditions. The result is deterministic: regions are ordered by
/// their first statement index and hold their statements in original
/// order. A possible truncation cut yields a single region, which the
/// caller runs on the sequential path.
pub(crate) fn partition(
    program: &Program,
    callgraph: &CallGraph,
    method: MethodId,
    call_stack: &[MethodId],
    max_inline_depth: usize,
    body: &[Stmt],
) -> Vec<Region> {
    let n = body.len();
    if n == 0 {
        return Vec::new();
    }
    let sequential = |body: &[Stmt]| -> Vec<Region> {
        let mut fp = Footprint::default();
        for stmt in body {
            walk_stmt(program, callgraph, method, stmt, &mut fp);
        }
        vec![Region {
            stmts: (0..n).collect(),
            writes: fp.writes,
        }]
    };

    // Per-statement raw footprints.
    let mut fps: Vec<Footprint> = body
        .iter()
        .map(|stmt| {
            let mut fp = Footprint::default();
            walk_stmt(program, callgraph, method, stmt, &mut fp);
            fp
        })
        .collect();

    // Close the callee sets, building summaries on demand, and check
    // the truncation precondition: no method of the closure may call
    // back into an active frame, no closure cycle (recursion cut), and
    // no chain deep enough to hit the inlining bound.
    let mut summaries: BTreeMap<MethodId, MethodSummary> = BTreeMap::new();
    let mut closures: Vec<BTreeSet<MethodId>> = Vec::with_capacity(n);
    for fp in &fps {
        let mut closure: BTreeSet<MethodId> = BTreeSet::new();
        let mut frontier = fp.direct.clone();
        while let Some(m) = frontier.pop() {
            if !closure.insert(m) {
                continue;
            }
            if call_stack.contains(&m) {
                return sequential(body);
            }
            let summary = summaries
                .entry(m)
                .or_insert_with(|| method_summary(program, callgraph, m));
            frontier.extend(summary.callees.iter().copied());
        }
        closures.push(closure);
    }
    // Cycle check over the union closure (tri-color DFS).
    let all: BTreeSet<MethodId> = closures.iter().flatten().copied().collect();
    {
        let mut color: BTreeMap<MethodId, u8> = BTreeMap::new(); // 1 = open, 2 = done
        for &root in &all {
            if color.contains_key(&root) {
                continue;
            }
            // Explicit stack: (method, next-callee index).
            let mut stack: Vec<(MethodId, usize)> = vec![(root, 0)];
            color.insert(root, 1);
            while let Some(frame) = stack.last_mut() {
                let (m, i) = (frame.0, frame.1);
                let callees = &summaries[&m].callees;
                if i < callees.len() {
                    frame.1 += 1;
                    let c = callees[i];
                    match color.get(&c) {
                        Some(1) => return sequential(body), // cycle → cut possible
                        Some(_) => {}
                        None => {
                            color.insert(c, 1);
                            stack.push((c, 0));
                        }
                    }
                } else {
                    color.insert(m, 2);
                    stack.pop();
                }
            }
        }
    }
    // Depth check: a call attempted at stack length ≥ max_inline_depth
    // cuts; the deepest attempt from a top-level call to `t` happens at
    // length `len(call_stack) + depth_of(t)`.
    let mut memo: BTreeMap<MethodId, usize> = BTreeMap::new();
    for fp in &fps {
        for &t in &fp.direct {
            if call_stack.len() + depth_of(t, &summaries, &mut memo) >= max_inline_depth {
                return sequential(body);
            }
        }
    }

    // Fold the closure's field effects into each statement's footprint.
    for (fp, closure) in fps.iter_mut().zip(&closures) {
        for m in closure {
            fp.fields_loaded.extend(summaries[m].fields_loaded.iter());
            fp.fields_stored.extend(summaries[m].fields_stored.iter());
        }
    }

    // Union-find over statement indices, smallest index as
    // representative for determinism.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            parent[hi] = lo;
        }
    }

    // Rule 1: local dataflow — a written local glues all its touchers.
    let mut local_writers: BTreeMap<LocalId, Vec<usize>> = BTreeMap::new();
    let mut local_touchers: BTreeMap<LocalId, Vec<usize>> = BTreeMap::new();
    for (i, fp) in fps.iter().enumerate() {
        for &l in &fp.writes {
            local_writers.entry(l).or_default().push(i);
            local_touchers.entry(l).or_default().push(i);
        }
        for &l in &fp.reads {
            local_touchers.entry(l).or_default().push(i);
        }
    }
    for (l, writers) in &local_writers {
        for &t in &local_touchers[l] {
            union(&mut parent, writers[0], t);
        }
    }

    // Rule 2: field footprints — a stored field glues all its touchers.
    let mut field_storers: BTreeMap<FieldId, Vec<usize>> = BTreeMap::new();
    let mut field_touchers: BTreeMap<FieldId, Vec<usize>> = BTreeMap::new();
    for (i, fp) in fps.iter().enumerate() {
        for &f in &fp.fields_stored {
            field_storers.entry(f).or_default().push(i);
            field_touchers.entry(f).or_default().push(i);
        }
        for &f in &fp.fields_loaded {
            field_touchers.entry(f).or_default().push(i);
        }
    }
    for (f, storers) in &field_storers {
        for &t in &field_touchers[f] {
            union(&mut parent, storers[0], t);
        }
    }

    // Materialize regions in first-statement order.
    let mut by_root: BTreeMap<usize, Region> = BTreeMap::new();
    for (i, fp) in fps.iter().enumerate().take(n) {
        let root = find(&mut parent, i);
        let region = by_root.entry(root).or_insert_with(|| Region {
            stmts: Vec::new(),
            writes: BTreeSet::new(),
        });
        region.stmts.push(i);
        region.writes.extend(fp.writes.iter());
    }
    by_root.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::Algorithm;
    use leakchecker_frontend::compile;
    use leakchecker_ir::ids::LoopId;

    /// Compiles, finds the designated loop's body in `main`, and
    /// partitions it the way `exec_designated_loop` would (stack =
    /// `[main]`, default inlining depth).
    fn regions_of(src: &str) -> (Vec<Region>, usize) {
        let unit = compile(src).expect("test program compiles");
        let program = unit.program;
        let entry = program.entry().expect("has main");
        let callgraph = CallGraph::build_from(&program, &[entry], Algorithm::Rta);
        let designated = unit.checked_loops[0];
        fn find_loop(stmts: &[Stmt], id: LoopId) -> Option<Vec<Stmt>> {
            for s in stmts {
                match s {
                    Stmt::While { id: l, body, .. } if *l == id => return Some(body.clone()),
                    Stmt::While { body, .. } => {
                        if let Some(b) = find_loop(body, id) {
                            return Some(b);
                        }
                    }
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        if let Some(b) =
                            find_loop(then_branch, id).or_else(|| find_loop(else_branch, id))
                        {
                            return Some(b);
                        }
                    }
                    _ => {}
                }
            }
            None
        }
        let body =
            find_loop(&program.method(entry).body, designated).expect("designated loop found");
        let regions = partition(&program, &callgraph, entry, &[entry], 24, &body);
        (regions, body.len())
    }

    #[test]
    fn independent_handlers_split_and_every_statement_is_covered() {
        let (regions, nstmts) = regions_of(
            "class Item { int tag; }
             class HolderA { Item item; }
             class HolderB { Item item; }
             class Main {
               static void main() {
                 HolderA a = new HolderA();
                 HolderB b = new HolderB();
                 int event = 0;
                 @check while (nondet()) {
                   Item x = new Item();
                   a.item = x;
                   Item y = new Item();
                   b.item = y;
                   event = event + 1;
                 }
               }
             }",
        );
        // The two handler chains write different locals and different
        // fields (HolderA.item vs HolderB.item are distinct FieldIds);
        // the shared implicit Item constructor has no effect channel and
        // the integer bump is invisible. At least two regions must
        // appear, and the partition must cover every statement once.
        assert!(regions.len() >= 2, "regions: {regions:?}");
        let mut covered: Vec<usize> = regions.iter().flat_map(|r| r.stmts.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, (0..nstmts).collect::<Vec<_>>());
    }

    #[test]
    fn shared_field_store_load_merges() {
        let (regions, _) = regions_of(
            "class Item { }
             class Holder { Item item; }
             class Main {
               static void main() {
                 Holder h = new Holder();
                 @check while (nondet()) {
                   Item x = new Item();
                   h.item = x;
                   Item y = h.item;
                 }
               }
             }",
        );
        // The store and the load of Holder.item must share a region; the
        // `new` feeding the store is glued by local dataflow.
        let touching: Vec<&Region> = regions.iter().filter(|r| r.stmts.len() > 1).collect();
        assert_eq!(touching.len(), 1, "{regions:?}");
        assert!(touching[0].stmts.len() >= 3);
    }

    #[test]
    fn shared_pure_callee_does_not_merge() {
        let (regions, _) = regions_of(
            "class Item { }
             class SinkA { Item slot; }
             class SinkB { Item slot; }
             class Lib {
               static Item mk() { Item i = new Item(); return i; }
             }
             class Main {
               static void main() {
                 SinkA a = new SinkA();
                 SinkB b = new SinkB();
                 @check while (nondet()) {
                   Item x = Lib.mk();
                   a.slot = x;
                   Item y = Lib.mk();
                   b.slot = y;
                 }
               }
             }",
        );
        // Both chains inline Lib.mk, but a callee with no field effects
        // is not a channel between regions: its frames are private and
        // its allocation-site facts are set-unions. The chains stay
        // split — this is what lets thousands of handlers allocating a
        // shared payload class run in parallel.
        let multi: Vec<&Region> = regions.iter().filter(|r| r.stmts.len() > 1).collect();
        assert_eq!(multi.len(), 2, "{regions:?}");
    }

    #[test]
    fn shared_callee_storing_a_field_merges() {
        let (regions, _) = regions_of(
            "class Item { }
             class Shared { Item cache; }
             class Lib {
               static void put(Shared s, Item it) { s.cache = it; }
             }
             class Main {
               static void main() {
                 Shared s = new Shared();
                 @check while (nondet()) {
                   Item x = new Item();
                   Lib.put(s, x);
                   Item y = new Item();
                   Lib.put(s, y);
                 }
               }
             }",
        );
        // Both chains store Shared.cache through the inlined callee:
        // the cells collide, so the chains must merge.
        let multi: Vec<&Region> = regions.iter().filter(|r| r.stmts.len() > 1).collect();
        assert_eq!(multi.len(), 1, "{regions:?}");
    }

    #[test]
    fn load_only_sharing_stays_split() {
        let (regions, _) = regions_of(
            "class Cfg { }
             class App { Cfg cfg; }
             class SinkA { Cfg seen; }
             class SinkB { Cfg seen; }
             class Main {
               static void main() {
                 App app = new App();
                 SinkA a = new SinkA();
                 SinkB b = new SinkB();
                 @check while (nondet()) {
                   Cfg c1 = app.cfg;
                   a.seen = c1;
                   Cfg c2 = app.cfg;
                   b.seen = c2;
                 }
               }
             }",
        );
        // App.cfg is loaded by both chains but stored by neither inside
        // the loop; SinkA.seen / SinkB.seen are distinct fields. The
        // chains stay independent.
        let multi: Vec<&Region> = regions.iter().filter(|r| r.stmts.len() > 1).collect();
        assert_eq!(multi.len(), 2, "{regions:?}");
    }

    #[test]
    fn written_local_glues_its_readers() {
        let (regions, _) = regions_of(
            "class Item { }
             class HolderA { Item item; }
             class HolderB { Item item; }
             class Main {
               static void main() {
                 HolderA a = new HolderA();
                 HolderB b = new HolderB();
                 @check while (nondet()) {
                   Item x = new Item();
                   a.item = x;
                   b.item = x;
                 }
               }
             }",
        );
        // Both stores read local x; the lowered `new` chain (New +
        // constructor call + Assign) writes it: one five-statement
        // region.
        let multi: Vec<&Region> = regions.iter().filter(|r| r.stmts.len() > 1).collect();
        assert_eq!(multi.len(), 1, "{regions:?}");
        assert_eq!(multi[0].stmts.len(), 5, "{regions:?}");
    }

    #[test]
    fn possible_recursion_cut_forces_a_single_region() {
        let (regions, nstmts) = regions_of(
            "class Item { }
             class HolderA { Item item; }
             class HolderB { Item item; }
             class Rec {
               static int spin(int n) { int r = Rec.spin(n - 1); return r; }
             }
             class Main {
               static void main() {
                 HolderA a = new HolderA();
                 HolderB b = new HolderB();
                 @check while (nondet()) {
                   Item x = new Item();
                   a.item = x;
                   int k = Rec.spin(3);
                   Item y = new Item();
                   b.item = y;
                 }
               }
             }",
        );
        // Rec.spin recurses, so the interpreter will cut and return ⊤
        // into an int local the conflict rules do not watch. The whole
        // body collapses to one region (sequential execution).
        assert_eq!(regions.len(), 1, "{regions:?}");
        assert_eq!(regions[0].stmts.len(), nstmts);
    }
}
