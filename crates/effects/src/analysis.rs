//! The abstract interpreter implementing the type-and-effect system.
//!
//! The analysis runs from the program entry, abstractly executing the
//! structured IR with bounded call inlining. Allocation sites executed
//! (abstractly) under the designated loop are *inside* sites; their types
//! start each iteration as `ĉ` (rule TNew). At the start of every abstract
//! iteration of the designated loop the aging operator `⊕` is applied to
//! the environment and the abstract heap (rule TWhile); loads through
//! bases that persist across iterations re-establish `f̂` for the loaded
//! objects; the loop body is re-analyzed until the whole abstract state
//! stabilizes (the TWhile fixed point).
//!
//! The final per-site ERA is the join of the site's eras over every
//! occurrence *reachable* in the final state: bindings in the environment,
//! static fields, and abstract-heap cells whose base is itself reachable
//! (an outside object is always reachable — something outside the loop
//! refers to it). Heap cells whose iteration-local container died with its
//! iteration are thereby garbage-collected from the report, which is what
//! keeps truly iteration-local structures classified `ĉ`.
//!
//! # Parallel (Jacobi) rounds
//!
//! With [`EffectConfig::jobs`] ≠ 1 the designated-loop fixpoint runs each
//! abstract iteration as a *round* of independent regions: the loop body
//! is partitioned (see `partition.rs`) so that no abstract fact can flow
//! between two regions within one iteration, every region executes
//! against an immutable snapshot of the post-aging heap, and the
//! per-region deltas (heap overlay, written locals, effect sets) are
//! merged back in a fixed region order. Because the regions are truly
//! independent, each round reproduces the sequential iteration's
//! post-state *exactly* — same environments, heap, effect sets, iteration
//! count, and truncation flag — not merely the same fixpoint, which is
//! what keeps [`EffectSummary`] byte-identical at every job count.

use crate::domain::{AbsEffect, AbsType, EffectBase, TypeKey, Val};
use crate::era::Era;
use crate::partition::{partition, Region};
use leakchecker_callgraph::CallGraph;
use leakchecker_ir::ids::{AllocSite, FieldId, LocalId, LoopId, MethodId};
use leakchecker_ir::stmt::Stmt;
use leakchecker_ir::Program;
use leakchecker_parallel::{effective_jobs, parallel_map};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Analysis configuration.
#[derive(Copy, Clone, Debug)]
pub struct EffectConfig {
    /// Maximum distinct allocation sites per abstract value before
    /// collapsing to `⊤`. Bound 1 reproduces the paper's formal domain.
    pub type_set_bound: usize,
    /// Maximum call-inlining depth.
    pub max_inline_depth: usize,
    /// Cap on abstract iterations per loop fixed point.
    pub max_fixpoint_iters: usize,
    /// Treat started `Thread` objects as outside objects (the Mikou case
    /// study's workaround): objects captured by a thread on which
    /// `start()` was invoked escape regardless of the thread's own ERA.
    pub model_threads: bool,
    /// Worker threads for the designated-loop Jacobi rounds: `1` runs the
    /// classic sequential walk (the default), `0` uses one worker per
    /// hardware thread, `n` uses `n` workers. Results are identical at
    /// every value.
    pub jobs: usize,
}

impl Default for EffectConfig {
    fn default() -> Self {
        EffectConfig {
            type_set_bound: 8,
            max_inline_depth: 24,
            max_fixpoint_iters: 40,
            model_threads: false,
            jobs: 1,
        }
    }
}

/// The analysis result.
#[derive(Clone, Debug, Default)]
pub struct EffectSummary {
    /// Final ERA per allocation site (sites never abstractly executed are
    /// absent).
    pub eras: HashMap<AllocSite, Era>,
    /// Abstract store effects (Ψ̃), deduplicated.
    pub stores: BTreeSet<AbsEffect>,
    /// Abstract load effects (Ω̃), deduplicated.
    pub loads: BTreeSet<AbsEffect>,
    /// Sites abstractly executed under the designated loop.
    pub inside_sites: BTreeSet<AllocSite>,
    /// Object keys that were returned from a library method to
    /// application code (satisfying the stronger flows-in condition of
    /// paper Section 4).
    pub returned_from_library: BTreeSet<TypeKey>,
    /// Object keys of `Thread` instances on which `start()` was called
    /// (only populated under [`EffectConfig::model_threads`]).
    pub started_threads: BTreeSet<TypeKey>,
    /// `true` if inlining depth, recursion, or a fixpoint cap truncated
    /// the analysis (results may under-approximate).
    pub truncated: bool,
    /// Abstract iterations executed across designated-loop fixpoints.
    /// Identical at every job count (each parallel round reproduces one
    /// sequential iteration exactly).
    pub rounds: usize,
    /// Regions in the largest designated-loop partition actually run on
    /// the parallel path; `0` when the sequential path ran. Telemetry
    /// only — depends on the resolved worker count, so it is excluded
    /// from cross-width equivalence comparisons.
    pub regions: usize,
}

impl EffectSummary {
    /// The ERA of a site ([`Era::Outside`] when never observed inside).
    pub fn era(&self, site: AllocSite) -> Era {
        self.eras.get(&site).copied().unwrap_or(Era::Outside)
    }
}

/// Runs the analysis: abstractly execute from `entry` (or the program
/// entry), treating `designated` as the checked loop.
pub fn analyze(
    program: &Program,
    callgraph: &CallGraph,
    designated: LoopId,
    config: EffectConfig,
) -> EffectSummary {
    let entry = program.entry().expect("program has an entry point");
    analyze_from(program, callgraph, entry, designated, config)
}

/// Like [`analyze`], but starting at an explicit root method (used for
/// checkable regions, where the detector wraps a method in an artificial
/// loop that has no real call path from `main`).
pub fn analyze_from(
    program: &Program,
    callgraph: &CallGraph,
    root: MethodId,
    designated: LoopId,
    config: EffectConfig,
) -> EffectSummary {
    let mut interp = AbstractInterp {
        program,
        callgraph,
        config,
        designated,
        heap: HeapView::default(),
        stores: BTreeSet::new(),
        loads: BTreeSet::new(),
        inside_sites: BTreeSet::new(),
        loop_depth: 0,
        call_stack: vec![root],
        returned_from_library: BTreeSet::new(),
        started_threads: BTreeSet::new(),
        truncated: false,
        final_roots: Vec::new(),
        top_escape: false,
        in_region: false,
        rounds: 0,
        region_count: 0,
    };
    let mut env = Env::default();
    let nlocals = program.method(root).locals.len();
    env.locals = vec![Val::Bottom; nlocals];
    interp.exec_method_body(root, &mut env);
    interp.final_roots.push(env);
    interp.finish()
}

/// One abstract frame: values of the current method's locals.
///
/// Public (but hidden) so the lattice-law property tests can exercise
/// [`join_env`]/[`age_env`] on arbitrary frames; not part of the stable
/// API.
#[doc(hidden)]
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Env {
    pub locals: Vec<Val>,
    /// Join of all values returned so far from this frame.
    pub ret: Val,
}

/// Which generation of container instances a heap cell describes.
///
/// Abstract-heap cells are addressed by the base type's *generation*
/// rather than its exact ERA, so a cell written through a `ĉ` base in one
/// iteration is found again when the same container is reached through an
/// `f̂`/`⊤̂` base in a later iteration (both are "old" instances), while
/// cells of containers that died with their iteration stay separate from
/// the fresh instances of the next one.
#[doc(hidden)]
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Gen {
    /// Containers created outside the designated loop.
    Outside,
    /// Containers created in the current abstract iteration.
    Fresh,
    /// Containers surviving from earlier iterations.
    Old,
}

#[doc(hidden)]
pub fn gen_of(era: Era) -> Gen {
    match era {
        Era::Outside => Gen::Outside,
        Era::Current => Gen::Fresh,
        Era::Future | Era::Top => Gen::Old,
    }
}

#[doc(hidden)]
pub type HeapKey = (TypeKey, Gen, FieldId);

/// The abstract heap as a (possibly layered) view: an optional immutable
/// snapshot shared by every region of a Jacobi round, overlaid by a local
/// delta map. On the sequential path `base` is `None` and `local` *is*
/// the heap, reproducing the original single-map behavior bit for bit.
#[derive(Clone, Debug, Default)]
struct HeapView {
    base: Option<Arc<BTreeMap<HeapKey, Val>>>,
    local: BTreeMap<HeapKey, Val>,
}

impl HeapView {
    fn get(&self, key: &HeapKey) -> Val {
        if let Some(v) = self.local.get(key) {
            return v.clone();
        }
        match &self.base {
            Some(b) => b.get(key).cloned().unwrap_or(Val::Bottom),
            None => Val::Bottom,
        }
    }

    /// Weak update: joins `val` into the cell. Mirrors the sequential
    /// `entry(key).or_default()` discipline exactly — in particular a
    /// previously absent key is materialized even when the joined value
    /// stays `⊥`, because heap-equality convergence checks distinguish
    /// absent cells from `⊥` cells and the parallel path must reach
    /// stability in the same iteration the sequential path does.
    fn store_join(&mut self, key: HeapKey, val: Val, bound: usize) {
        let cur = self.get(&key);
        let new = cur.join(&val, bound);
        let in_base = self.base.as_ref().is_some_and(|b| b.contains_key(&key));
        if self.local.contains_key(&key) || !in_base || new != cur {
            self.local.insert(key, new);
        }
    }

    /// Strong update (flow-back reclassification). Callers only invoke
    /// this when the value actually changed, so the overlay entry always
    /// differs from the snapshot underneath it.
    fn set(&mut self, key: HeapKey, val: Val) {
        self.local.insert(key, val);
    }

    /// Every key of `field` in the effective heap, in key order (the
    /// order the sequential single-map walk would enumerate them).
    fn field_keys(&self, field: FieldId) -> Vec<HeapKey> {
        let local = self.local.keys().filter(|(_, _, f)| *f == field).cloned();
        match &self.base {
            None => local.collect(),
            Some(b) => {
                let mut keys: BTreeSet<HeapKey> =
                    b.keys().filter(|(_, _, f)| *f == field).cloned().collect();
                keys.extend(local);
                keys.into_iter().collect()
            }
        }
    }
}

/// Everything one region of a Jacobi round produces, merged back into
/// the main interpreter in fixed region order.
struct RegionOutcome {
    overlay: BTreeMap<HeapKey, Val>,
    env: Env,
    stores: BTreeSet<AbsEffect>,
    loads: BTreeSet<AbsEffect>,
    inside_sites: BTreeSet<AllocSite>,
    returned_from_library: BTreeSet<TypeKey>,
    started_threads: BTreeSet<TypeKey>,
    final_roots: Vec<Env>,
    truncated: bool,
    top_escape: bool,
}

struct AbstractInterp<'a> {
    program: &'a Program,
    callgraph: &'a CallGraph,
    config: EffectConfig,
    designated: LoopId,
    /// Abstract heap H: (base type, field) → stored value. Static fields
    /// live under `TypeKey::Globals` with era `0̂`.
    heap: HeapView,
    stores: BTreeSet<AbsEffect>,
    loads: BTreeSet<AbsEffect>,
    inside_sites: BTreeSet<AllocSite>,
    /// > 0 while abstractly inside the designated loop.
    loop_depth: usize,
    call_stack: Vec<MethodId>,
    returned_from_library: BTreeSet<TypeKey>,
    started_threads: BTreeSet<TypeKey>,
    truncated: bool,
    /// Environments captured for the final reachability report.
    final_roots: Vec<Env>,
    /// Set when a `⊤` value was stored through a persistent base inside
    /// the loop: any inside object may have escaped, so every inside site
    /// is conservatively reported `⊤̂` (only reachable when the value
    /// domain collapses, e.g. under the formal bound-1 configuration).
    top_escape: bool,
    /// `true` while executing one region of a Jacobi round: forces any
    /// (structurally impossible) nested designated-loop fixpoint onto
    /// the sequential path.
    in_region: bool,
    /// Designated-loop abstract iterations executed so far.
    rounds: usize,
    /// Largest partition actually run on the parallel path.
    region_count: usize,
}

impl AbstractInterp<'_> {
    fn bound(&self) -> usize {
        self.config.type_set_bound
    }

    fn inside(&self) -> bool {
        self.loop_depth > 0
    }

    /// The method whose body is currently being abstractly executed.
    fn current_method(&self) -> MethodId {
        *self.call_stack.last().expect("call stack holds the root")
    }

    /// Is the current code standard-library code?
    fn in_library(&self) -> bool {
        self.program.is_library_method(self.current_method())
    }

    fn exec_method_body(&mut self, method: MethodId, env: &mut Env) {
        // Clone the body: the program is immutable, the clone avoids
        // borrowing `self.program` across the recursive walk.
        let body = self.program.method(method).body.clone();
        self.exec_stmts(&body, env);
    }

    fn exec_stmts(&mut self, stmts: &[Stmt], env: &mut Env) {
        for stmt in stmts {
            self.exec_stmt(stmt, env);
        }
    }

    fn heap_load(&self, key: &HeapKey) -> Val {
        self.heap.get(key)
    }

    fn heap_store(&mut self, key: HeapKey, val: Val) {
        let bound = self.bound();
        self.heap.store_join(key, val, bound);
    }

    /// All heap keys a base value can denote. `⊤` bases touch every key of
    /// the field (conservative).
    fn keys_for_base(&self, base: &Val, field: FieldId) -> Vec<HeapKey> {
        match base {
            Val::Bottom => Vec::new(),
            Val::Top => self.heap.field_keys(field),
            Val::Types(_) => base
                .types()
                .map(|t| (t.key, gen_of(t.era), field))
                .collect(),
        }
    }

    fn exec_stmt(&mut self, stmt: &Stmt, env: &mut Env) {
        match stmt {
            Stmt::New { dst, site, .. } | Stmt::NewArray { dst, site, .. } => {
                let era = if self.inside() {
                    self.inside_sites.insert(*site);
                    Era::Current
                } else {
                    Era::Outside
                };
                env.locals[dst.index()] = Val::one(AbsType::site(*site, era));
            }
            Stmt::Assign { dst, src } => {
                env.locals[dst.index()] = env.locals[src.index()].clone();
            }
            Stmt::AssignNull { dst } => {
                env.locals[dst.index()] = Val::Bottom;
            }
            Stmt::Const { .. } | Stmt::NonDetBool { .. } | Stmt::BinOp { .. } | Stmt::Nop => {}
            Stmt::Store { base, field, src } => {
                self.do_store(env, *base, *field, *src);
            }
            Stmt::ArrayStore { base, src, .. } => {
                self.do_store(env, *base, leakchecker_ir::ids::ARRAY_ELEM_FIELD, *src);
            }
            Stmt::Load { dst, base, field } => {
                self.do_load(env, *dst, *base, *field);
            }
            Stmt::ArrayLoad { dst, base, .. } => {
                self.do_load(env, *dst, *base, leakchecker_ir::ids::ARRAY_ELEM_FIELD);
            }
            Stmt::StaticStore { field, src } => {
                if !self.program.field(*field).ty.is_reference() {
                    return;
                }
                let val = env.locals[src.index()].clone();
                let key = (TypeKey::Globals, Gen::Outside, *field);
                let inside = self.inside();
                let in_library = self.in_library();
                for ty in val.types() {
                    self.stores.insert(AbsEffect {
                        value: ty,
                        field: *field,
                        base: EffectBase::Type(AbsType::new(TypeKey::Globals, Era::Outside)),
                        inside_loop: inside,
                        in_library,
                    });
                }
                self.heap_store(key, val);
            }
            Stmt::StaticLoad { dst, field } => {
                if !self.program.field(*field).ty.is_reference() {
                    return;
                }
                let key = (TypeKey::Globals, Gen::Outside, *field);
                let loaded = self.heap_load(&key);
                let adjusted = self.flow_back_adjust(&loaded, Era::Outside, key);
                let inside = self.inside();
                let in_library = self.in_library();
                for ty in adjusted.types() {
                    self.loads.insert(AbsEffect {
                        value: ty,
                        field: *field,
                        base: EffectBase::Type(AbsType::new(TypeKey::Globals, Era::Outside)),
                        inside_loop: inside,
                        in_library,
                    });
                }
                env.locals[dst.index()] = adjusted;
            }
            Stmt::Call {
                dst,
                method,
                receiver,
                args,
                site,
                ..
            } => {
                let mut targets: Vec<MethodId> = self.callgraph.targets(*site).to_vec();
                if targets.is_empty() {
                    targets.push(*method);
                }
                // Thread modeling: `t.start()` marks the receiver objects
                // as started threads (treated as outside objects by the
                // detector).
                if self.config.model_threads && self.program.method(*method).name == "start" {
                    if let Some(r) = receiver {
                        if self.is_thread_typed(env, *r) {
                            for ty in env.locals[r.index()].types() {
                                self.started_threads.insert(ty.key);
                            }
                        }
                    }
                }
                let caller_is_app = !self.in_library();
                let mut ret = Val::Bottom;
                for target in targets {
                    if self.call_stack.contains(&target)
                        || self.call_stack.len() >= self.config.max_inline_depth
                    {
                        // Recursion or depth cut: skip the body. Results
                        // may under-approximate; flagged as truncated.
                        self.truncated = true;
                        ret = Val::Top;
                        continue;
                    }
                    let callee = self.program.method(target);
                    let mut callee_env = Env {
                        locals: vec![Val::Bottom; callee.locals.len()],
                        ret: Val::Bottom,
                    };
                    let mut slot = 0;
                    if !callee.is_static {
                        if let Some(r) = receiver {
                            callee_env.locals[0] = env.locals[r.index()].clone();
                        }
                        slot = 1;
                    }
                    for (i, a) in args.iter().enumerate() {
                        if slot + i < callee_env.locals.len() {
                            callee_env.locals[slot + i] = env.locals[a.index()].clone();
                        }
                    }
                    self.call_stack.push(target);
                    self.exec_method_body(target, &mut callee_env);
                    self.call_stack.pop();
                    // Crossing the library → application boundary with a
                    // return value satisfies the stronger flows-in
                    // condition for the returned objects.
                    if caller_is_app && self.program.is_library_method(target) {
                        for ty in callee_env.ret.types() {
                            self.returned_from_library.insert(ty.key);
                        }
                    }
                    ret = ret.join(&callee_env.ret, self.bound());
                    // Keep the callee frame as a reachability root: values
                    // it held may pin heap cells observed by the report.
                    self.final_roots.push(callee_env);
                }
                if let Some(d) = dst {
                    if self.program.method(*method).ret_ty.is_reference() || ret.is_top() {
                        env.locals[d.index()] = ret;
                    }
                }
            }
            Stmt::Return(v) => {
                if let Some(v) = v {
                    let val = env.locals[v.index()].clone();
                    env.ret = env.ret.join(&val, self.bound());
                }
                // Over-approximation: execution abstractly continues past
                // the return; later statements only add may-facts.
            }
            Stmt::Break | Stmt::Continue => {
                // Over-approximation: treated as fallthrough.
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                let mut then_env = env.clone();
                let mut else_env = env.clone();
                self.exec_stmts(then_branch, &mut then_env);
                self.exec_stmts(else_branch, &mut else_env);
                *env = join_env(&then_env, &else_env, self.bound());
            }
            Stmt::While { id, body, .. } => {
                if *id == self.designated {
                    self.exec_designated_loop(body, env);
                } else {
                    self.exec_plain_loop(body, env);
                }
            }
        }
    }

    /// Does the receiver's declared class descend from a class named
    /// `Thread`? (Name-based recognition: the mini-JDK flags its thread
    /// class this way.)
    fn is_thread_typed(&self, env: &Env, receiver: LocalId) -> bool {
        let thread = match self.program.class_by_name("Thread") {
            Some(c) => c,
            None => return false,
        };
        // Check via the abstract value's allocation sites.
        env.locals[receiver.index()].types().any(|t| match t.key {
            TypeKey::Site(site) => self
                .program
                .alloc(site)
                .ty
                .class()
                .is_some_and(|c| self.program.is_subclass(c, thread)),
            TypeKey::Globals => false,
        }) || env.locals[receiver.index()].is_top()
    }

    fn do_store(&mut self, env: &mut Env, base: LocalId, field: FieldId, src: LocalId) {
        let base_val = env.locals[base.index()].clone();
        let src_val = env.locals[src.index()].clone();
        if src_val.is_bottom() {
            // Null store: the formal system performs no strong update
            // (the documented destructive-update imprecision).
            return;
        }
        let inside = self.inside();
        if inside && src_val.is_top() && base_val.may_persist() {
            self.top_escape = true;
        }
        // Record effects.
        let bases: Vec<EffectBase> = match &base_val {
            Val::Top => vec![EffectBase::Top],
            _ => base_val.types().map(EffectBase::Type).collect(),
        };
        let in_library = self.in_library();
        for b in &bases {
            for ty in src_val.types() {
                self.stores.insert(AbsEffect {
                    value: ty,
                    field,
                    base: *b,
                    inside_loop: inside,
                    in_library,
                });
            }
        }
        // Update the abstract heap (weak).
        for key in self.keys_for_base(&base_val, field) {
            self.heap_store(key, src_val.clone());
        }
        if base_val.is_top() {
            // Store through ⊤: conservatively taint every existing cell of
            // this field — handled above via keys_for_base.
        }
    }

    fn do_load(&mut self, env: &mut Env, dst: LocalId, base: LocalId, field: FieldId) {
        let base_val = env.locals[base.index()].clone();
        let mut loaded = Val::Bottom;
        let inside = self.inside();
        match &base_val {
            Val::Bottom => {}
            Val::Top => {
                // Load through ⊤: join every cell of the field.
                for key in self.keys_for_base(&base_val, field) {
                    let cell = self.heap_load(&key);
                    // A ⊤ base may be any persisting object.
                    let adjusted = self.flow_back_adjust(&cell, Era::Top, key);
                    loaded = loaded.join(&adjusted, self.bound());
                }
                let in_library = self.in_library();
                for ty in loaded.types() {
                    self.loads.insert(AbsEffect {
                        value: ty,
                        field,
                        base: EffectBase::Top,
                        inside_loop: inside,
                        in_library,
                    });
                }
            }
            Val::Types(_) => {
                for bty in base_val.types() {
                    let key = (bty.key, gen_of(bty.era), field);
                    let cell = self.heap_load(&key);
                    let adjusted = self.flow_back_adjust(&cell, bty.era, key);
                    let in_library = self.in_library();
                    for ty in adjusted.types() {
                        self.loads.insert(AbsEffect {
                            value: ty,
                            field,
                            base: EffectBase::Type(bty),
                            inside_loop: inside,
                            in_library,
                        });
                    }
                    loaded = loaded.join(&adjusted, self.bound());
                }
            }
        }
        env.locals[dst.index()] = loaded;
    }

    /// Rule TLoad's flow-back update: loading an inside object through a
    /// base that persists across iterations proves the object can be used
    /// in an iteration after the one that created it, so its ERA becomes
    /// `f̂` — both in the loaded value and (strong update) in the heap
    /// cell, which is how a cell that was aged to `⊤̂` is reclassified as
    /// properly carried-over.
    fn flow_back_adjust(&mut self, cell: &Val, base_era: Era, key: HeapKey) -> Val {
        if !self.inside() || !base_era.persists() {
            return cell.clone();
        }
        match cell {
            Val::Types(m) => {
                let adjusted: BTreeMap<TypeKey, Era> =
                    m.iter().map(|(&k, &e)| (k, e.flow_back())).collect();
                let new = Val::Types(adjusted);
                if new != *cell {
                    self.heap.set(key, new.clone());
                }
                new
            }
            other => other.clone(),
        }
    }

    /// A non-designated loop: plain fixed point, no iteration semantics.
    ///
    /// Note the convergence criterion is environment + heap only; the
    /// designated loop additionally watches the effect-log lengths. The
    /// asymmetry is deliberate (and test-pinned): a plain loop that adds
    /// a new effect necessarily also changes an environment value or a
    /// heap cell *or* repeats an effect already recorded, because effects
    /// are keyed by the abstract values involved — whereas a designated
    /// loop's aging operator can cycle the same env/heap while the
    /// `inside_loop` flag of freshly recorded effects still changes.
    ///
    /// Comparing `heap.local` is exact in both contexts: on the
    /// sequential path it *is* the heap, and inside a region the overlay
    /// changes iff the effective heap changes (stores only materialize
    /// overlay entries that differ from the snapshot or update existing
    /// ones).
    fn exec_plain_loop(&mut self, body: &[Stmt], env: &mut Env) {
        let mut state = env.clone();
        for _ in 0..self.config.max_fixpoint_iters {
            let heap_before = self.heap.local.clone();
            let mut iter_env = state.clone();
            self.exec_stmts(body, &mut iter_env);
            let joined = join_env(&state, &iter_env, self.bound());
            if joined == state && self.heap.local == heap_before {
                *env = joined;
                return;
            }
            state = joined;
        }
        self.truncated = true;
        *env = state;
    }

    /// The designated loop: rule TWhile with iteration aging. Each
    /// abstract iteration runs either sequentially or as one parallel
    /// Jacobi round; the two produce identical post-states, so iteration
    /// counts, truncation, and every summary component agree.
    fn exec_designated_loop(&mut self, body: &[Stmt], env: &mut Env) {
        self.loop_depth += 1;
        let workers = effective_jobs(self.config.jobs);
        let regions = if workers > 1 && !self.in_region {
            partition(
                self.program,
                self.callgraph,
                self.current_method(),
                &self.call_stack,
                self.config.max_inline_depth,
                body,
            )
        } else {
            Vec::new()
        };
        // A single region would serialize through parallel_map for
        // nothing; the sequential walk is the same computation.
        let parallel = regions.len() >= 2;
        if parallel {
            self.region_count = self.region_count.max(regions.len());
        }
        let mut state = env.clone();
        let mut stable = false;
        for _ in 0..self.config.max_fixpoint_iters {
            let heap_before = self.heap.local.clone();
            let stores_before = self.stores.len();
            let loads_before = self.loads.len();
            // ⊕: age the environment and the heap at the iteration start.
            let mut iter_env = age_env(&state);
            self.age_heap();
            self.rounds += 1;
            if parallel {
                self.exec_round_parallel(&regions, body, &mut iter_env, workers);
            } else {
                self.exec_stmts(body, &mut iter_env);
            }
            let joined = join_env(&state, &iter_env, self.bound());
            if joined == state
                && self.heap.local == heap_before
                && self.stores.len() == stores_before
                && self.loads.len() == loads_before
            {
                state = joined;
                stable = true;
                break;
            }
            state = joined;
        }
        if !stable {
            self.truncated = true;
        }
        self.loop_depth -= 1;
        *env = state;
    }

    /// One Jacobi round: every region executes against an immutable
    /// snapshot of the post-aging heap, then the deltas are merged in
    /// region order. The partition guarantees the regions are
    /// independent, so the merge order only matters for determinism, not
    /// for the result: overlapping overlay entries can only come from
    /// concurrent loads of the same untouched cell, whose idempotent
    /// flow-back adjustments write identical values.
    fn exec_round_parallel(
        &mut self,
        regions: &[Region],
        body: &[Stmt],
        iter_env: &mut Env,
        workers: usize,
    ) {
        debug_assert!(self.heap.base.is_none(), "rounds run on the main heap");
        let snapshot = Arc::new(std::mem::take(&mut self.heap.local));
        let program = self.program;
        let callgraph = self.callgraph;
        let config = self.config;
        let designated = self.designated;
        let loop_depth = self.loop_depth;
        let call_stack = &self.call_stack;
        let base_env = &*iter_env;
        let snap = &snapshot;
        // Schedule big regions first (work-stealing drains the singleton
        // tail); results are re-indexed so the merge below still runs in
        // canonical region order.
        let mut order: Vec<usize> = (0..regions.len()).collect();
        order.sort_by_key(|&r| (usize::MAX - regions[r].stmts.len(), r));
        let outcomes = parallel_map(workers, order.clone(), |r: usize| {
            let mut sub = AbstractInterp {
                program,
                callgraph,
                config,
                designated,
                heap: HeapView {
                    base: Some(Arc::clone(snap)),
                    local: BTreeMap::new(),
                },
                stores: BTreeSet::new(),
                loads: BTreeSet::new(),
                inside_sites: BTreeSet::new(),
                loop_depth,
                call_stack: call_stack.clone(),
                returned_from_library: BTreeSet::new(),
                started_threads: BTreeSet::new(),
                truncated: false,
                final_roots: Vec::new(),
                top_escape: false,
                in_region: true,
                rounds: 0,
                region_count: 0,
            };
            let mut env = base_env.clone();
            for &i in &regions[r].stmts {
                sub.exec_stmt(&body[i], &mut env);
            }
            RegionOutcome {
                overlay: sub.heap.local,
                env,
                stores: sub.stores,
                loads: sub.loads,
                inside_sites: sub.inside_sites,
                returned_from_library: sub.returned_from_library,
                started_threads: sub.started_threads,
                final_roots: sub.final_roots,
                truncated: sub.truncated,
                top_escape: sub.top_escape,
            }
        });
        let mut local =
            Arc::try_unwrap(snapshot).expect("every region dropped its snapshot handle");
        let bound = self.bound();
        let mut slots: Vec<Option<RegionOutcome>> = Vec::with_capacity(regions.len());
        slots.resize_with(regions.len(), || None);
        for (r, out) in order.into_iter().zip(outcomes) {
            slots[r] = Some(out);
        }
        let merged = slots.into_iter().map(|s| s.expect("every region ran"));
        for (region, out) in regions.iter().zip(merged) {
            // Heap delta: plain insert — entries are either for cells no
            // other region touches, or identical flow-back rewrites.
            for (k, v) in out.overlay {
                local.insert(k, v);
            }
            // Environment delta: the partition guarantees each local is
            // written by at most one region (and read by no other), so
            // taking the writer's final value is exact, not a join.
            for &l in &region.writes {
                iter_env.locals[l.index()] = out.env.locals[l.index()].clone();
            }
            // `ret` is accumulate-only (never read during execution), so
            // folding the per-region joins reproduces the sequential
            // value by idempotence.
            iter_env.ret = iter_env.ret.join(&out.env.ret, bound);
            self.stores.extend(out.stores);
            self.loads.extend(out.loads);
            self.inside_sites.extend(out.inside_sites);
            self.returned_from_library.extend(out.returned_from_library);
            self.started_threads.extend(out.started_threads);
            // finish()'s reachability join is order-independent, so the
            // region-order concatenation is equivalent to the sequential
            // interleaving.
            self.final_roots.extend(out.final_roots);
            self.truncated |= out.truncated;
            self.top_escape |= out.top_escape;
        }
        self.heap.local = local;
    }

    /// Ages every heap binding: fresh cells become old cells, and every
    /// stored value moves `ĉ`/`f̂` → `⊤̂` until a load proves flow-back.
    fn age_heap(&mut self) {
        debug_assert!(self.heap.base.is_none(), "aging runs on the main heap");
        let bound = self.bound();
        self.heap.local = age_heap_map(std::mem::take(&mut self.heap.local), bound);
    }

    /// Computes the final report: reachable-occurrence ERA join.
    fn finish(self) -> EffectSummary {
        // Roots: every captured environment binding, every outside-typed
        // object (referenced from outside the loop by assumption), and the
        // globals pseudo-object.
        let mut reachable: BTreeSet<(TypeKey, Era)> = BTreeSet::new();
        let mut queue: VecDeque<(TypeKey, Era)> = VecDeque::new();
        let mut eras: HashMap<AllocSite, Era> = HashMap::new();

        let add =
            |q: &mut VecDeque<(TypeKey, Era)>, seen: &mut BTreeSet<(TypeKey, Era)>, ty: AbsType| {
                if seen.insert((ty.key, ty.era)) {
                    q.push_back((ty.key, ty.era));
                }
            };

        for env in &self.final_roots {
            for val in env.locals.iter().chain(std::iter::once(&env.ret)) {
                for ty in val.types() {
                    add(&mut queue, &mut reachable, ty);
                }
            }
        }
        add(
            &mut queue,
            &mut reachable,
            AbsType::new(TypeKey::Globals, Era::Outside),
        );
        // Outside objects are live by assumption; their heap cells are
        // reachable. (The main interpreter's heap never has a snapshot
        // layer by the time the report is computed.)
        debug_assert!(self.heap.base.is_none());
        for ((key, gen, _), _) in self.heap.local.iter() {
            if *gen == Gen::Outside {
                add(&mut queue, &mut reachable, AbsType::new(*key, Era::Outside));
            }
        }

        let mut visited_cells: HashSet<HeapKey> = HashSet::new();
        while let Some((key, era)) = queue.pop_front() {
            if let TypeKey::Site(site) = key {
                if era.is_inside() {
                    eras.entry(site)
                        .and_modify(|e| *e = e.join(era))
                        .or_insert(era);
                }
            }
            // Follow heap edges: an object of generation g reaches the
            // cells addressed by that generation.
            let gen = gen_of(era);
            for ((bkey, bgen, _f), val) in self.heap.local.iter() {
                if (*bkey, *bgen) == (key, gen) {
                    let cell_id = (*bkey, *bgen, *_f);
                    if visited_cells.insert(cell_id) {
                        for ty in val.types() {
                            add(&mut queue, &mut reachable, ty);
                        }
                    }
                }
            }
        }

        // Inside sites with no reachable occurrence are iteration-local.
        for &site in &self.inside_sites {
            eras.entry(site).or_insert(Era::Current);
        }
        if self.top_escape {
            for &site in &self.inside_sites {
                eras.insert(site, Era::Top);
            }
        }

        EffectSummary {
            eras,
            stores: self.stores,
            loads: self.loads,
            inside_sites: self.inside_sites,
            returned_from_library: self.returned_from_library,
            started_threads: self.started_threads,
            truncated: self.truncated,
            rounds: self.rounds,
            regions: self.region_count,
        }
    }
}

/// Pointwise join of two frames. Public (hidden) for the lattice-law
/// property suite; the Jacobi merge relies on this being a semilattice
/// join (commutative, associative, idempotent, monotone).
#[doc(hidden)]
pub fn join_env(a: &Env, b: &Env, bound: usize) -> Env {
    debug_assert_eq!(a.locals.len(), b.locals.len());
    Env {
        locals: a
            .locals
            .iter()
            .zip(&b.locals)
            .map(|(x, y)| x.join(y, bound))
            .collect(),
        ret: a.ret.join(&b.ret, bound),
    }
}

/// Pointwise aging of a frame (`⊕` of rule TWhile).
#[doc(hidden)]
pub fn age_env(env: &Env) -> Env {
    Env {
        locals: env.locals.iter().map(Val::age).collect(),
        ret: env.ret.age(),
    }
}

/// Ages a whole abstract heap: fresh-generation cells move to the old
/// generation (joining with any existing old cell) and every value is
/// aged. Public (hidden) so the property suite can check monotonicity.
#[doc(hidden)]
pub fn age_heap_map(heap: BTreeMap<HeapKey, Val>, bound: usize) -> BTreeMap<HeapKey, Val> {
    let mut aged: BTreeMap<HeapKey, Val> = BTreeMap::new();
    for ((key, gen, field), val) in heap {
        let new_gen = match gen {
            Gen::Fresh => Gen::Old,
            other => other,
        };
        let new_val = val.age();
        let entry = aged.entry((key, new_gen, field)).or_default();
        *entry = entry.join(&new_val, bound);
    }
    aged
}
