//! The Extended Recency Abstraction (ERA) lattice.
//!
//! Each abstract object carries one of four ERA values with respect to the
//! designated loop `l` (paper Section 2):
//!
//! * `0̂` ([`Era::Outside`]) — created outside `l`;
//! * `ĉ` ([`Era::Current`]) — iteration-local: every instance dies before
//!   its creating iteration finishes;
//! * `f̂` ([`Era::Future`]) — instances may escape their creating
//!   iteration, and if they do, they may flow back into a later iteration;
//! * `⊤̂` ([`Era::Top`]) — instances may escape and will *not* flow back:
//!   the leak signature.
//!
//! The inside values form the chain `ĉ ⊑ f̂ ⊑ ⊤̂`; `0̂` never joins with
//! inside values in well-formed states (an allocation site is either
//! inside or outside the loop for a given inlining path), but the join is
//! total and conservatively yields `⊤̂` when they meet.

use std::fmt;

/// An ERA lattice value. See the module docs.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum Era {
    /// `0̂` — created outside the designated loop.
    Outside,
    /// `ĉ` — iteration-local.
    #[default]
    Current,
    /// `f̂` — escapes but flows back into a later iteration.
    Future,
    /// `⊤̂` — escapes and never flows back.
    Top,
}

impl Era {
    /// The lattice join (`⊔` of Figure 6).
    pub fn join(self, other: Era) -> Era {
        use Era::*;
        match (self, other) {
            (a, b) if a == b => a,
            // 0̂ meeting an inside value is conservatively ⊤̂.
            (Outside, _) | (_, Outside) => Top,
            (Top, _) | (_, Top) => Top,
            (Future, _) | (_, Future) => Future,
            (Current, Current) => Current,
        }
    }

    /// The iteration-boundary aging operator (`⊕ 1` of rule TWhile):
    /// inside objects surviving into a new iteration are no longer
    /// "current"; until a load proves they flow back they are `⊤̂`.
    pub fn age(self) -> Era {
        match self {
            Era::Outside => Era::Outside,
            Era::Current | Era::Future | Era::Top => Era::Top,
        }
    }

    /// Rule TLoad's flow-back refinement at the era level: observing an
    /// object through a base that persists across iterations proves the
    /// object can be used after the iteration that created it, so a
    /// persisting inside era becomes `f̂`. Everything else — `0̂` and the
    /// strictly iteration-local `ĉ` — is untouched. The operator is
    /// monotone on the inside chain and idempotent, and it never moves an era out of the
    /// escape chain (the result of a persisting inside era is still
    /// `⊒ f̂`), which is what lets concurrent Jacobi regions replay the
    /// same strong heap update without losing escape information.
    pub fn flow_back(self) -> Era {
        if self.is_inside() && self.persists() {
            Era::Future
        } else {
            self
        }
    }

    /// Returns `true` for the inside values `ĉ`, `f̂`, `⊤̂`.
    pub fn is_inside(self) -> bool {
        self != Era::Outside
    }

    /// Returns `true` when instances with this ERA may persist across
    /// iterations (anything but `ĉ`): loads through such a base may
    /// observe objects created in earlier iterations.
    pub fn persists(self) -> bool {
        self != Era::Current
    }

    /// Partial-order test: `self ⊑ other` in the inside chain.
    pub fn le(self, other: Era) -> bool {
        self.join(other) == other
    }
}

impl fmt::Display for Era {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Era::Outside => write!(f, "0"),
            Era::Current => write!(f, "c"),
            Era::Future => write!(f, "f"),
            Era::Top => write!(f, "T"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Era; 4] = [Era::Outside, Era::Current, Era::Future, Era::Top];

    #[test]
    fn join_table() {
        assert_eq!(Era::Current.join(Era::Future), Era::Future);
        assert_eq!(Era::Future.join(Era::Top), Era::Top);
        assert_eq!(Era::Current.join(Era::Top), Era::Top);
        assert_eq!(Era::Outside.join(Era::Outside), Era::Outside);
        assert_eq!(Era::Outside.join(Era::Current), Era::Top);
    }

    #[test]
    fn aging() {
        assert_eq!(Era::Current.age(), Era::Top);
        assert_eq!(Era::Future.age(), Era::Top);
        assert_eq!(Era::Top.age(), Era::Top);
        assert_eq!(Era::Outside.age(), Era::Outside);
    }

    #[test]
    fn flow_back_table() {
        assert_eq!(Era::Outside.flow_back(), Era::Outside);
        assert_eq!(Era::Current.flow_back(), Era::Current);
        assert_eq!(Era::Future.flow_back(), Era::Future);
        assert_eq!(Era::Top.flow_back(), Era::Future);
        for e in ALL {
            // Idempotent, and never leaves the escape chain.
            assert_eq!(e.flow_back().flow_back(), e.flow_back());
            assert_eq!(e.flow_back().persists(), e.persists());
            assert_eq!(e.flow_back().is_inside(), e.is_inside());
        }
    }

    #[test]
    fn predicates() {
        assert!(Era::Current.is_inside());
        assert!(!Era::Outside.is_inside());
        assert!(Era::Outside.persists());
        assert!(!Era::Current.persists());
        assert!(Era::Current.le(Era::Top));
        assert!(!Era::Top.le(Era::Current));
    }

    // The domain has four elements: check the lattice laws exhaustively.
    #[test]
    fn join_is_a_semilattice() {
        for a in ALL {
            assert_eq!(a.join(a), a, "idempotent at {a}");
            assert_eq!(a.join(Era::Top), Era::Top, "⊤ absorbs {a}");
            for b in ALL {
                assert_eq!(a.join(b), b.join(a), "commutative at {a},{b}");
                for c in ALL {
                    assert_eq!(
                        a.join(b).join(c),
                        a.join(b.join(c)),
                        "associative at {a},{b},{c}"
                    );
                }
            }
        }
    }

    #[test]
    fn aging_is_monotone_and_extensive() {
        for a in ALL {
            // extensive on the inside chain: x ⊑ age(x)
            if a != Era::Outside {
                assert!(a.le(a.age()), "age not extensive at {a}");
            }
            for b in ALL {
                // monotone: a ⊑ b ⟹ age(a) ⊑ age(b)
                if a.le(b) {
                    assert!(a.age().le(b.age()), "age not monotone at {a} ⊑ {b}");
                }
            }
        }
    }
}
