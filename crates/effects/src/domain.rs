//! Abstract semantic domains of the type-and-effect system.
//!
//! Types abstract run-time objects as `(allocation site, ERA)` pairs
//! (paper Figure 4). A variable's abstract value is a bounded *set* of
//! such types: the paper's single-site-or-`⊤` domain is the special case
//! with set bound 1, and the bound is configurable so the formal system of
//! Section 3 can be reproduced exactly while the default gives the
//! precision a practical tool needs. Exceeding the bound collapses to the
//! `⊤` type ("any object"), matching Figure 6's absorbing joins.

use crate::era::Era;
use leakchecker_ir::ids::{AllocSite, FieldId};
use std::collections::BTreeMap;
use std::fmt;

/// Identity part of an abstract type.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TypeKey {
    /// Objects created at the given allocation site.
    Site(AllocSite),
    /// The pseudo-object holding all static fields. Statics behave like
    /// fields of a single outside object, which is exactly how the
    /// detector treats escape through globals.
    Globals,
}

impl fmt::Display for TypeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeKey::Site(s) => write!(f, "{s}"),
            TypeKey::Globals => write!(f, "<globals>"),
        }
    }
}

/// An abstract type `τ = (key, era)`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AbsType {
    /// Which objects.
    pub key: TypeKey,
    /// Their extended-recency value.
    pub era: Era,
}

impl AbsType {
    /// Convenience constructor.
    pub fn new(key: TypeKey, era: Era) -> AbsType {
        AbsType { key, era }
    }

    /// A site type.
    pub fn site(site: AllocSite, era: Era) -> AbsType {
        AbsType::new(TypeKey::Site(site), era)
    }
}

impl fmt::Display for AbsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.key, self.era)
    }
}

/// A lattice value: `⊥`, a bounded set of types, or `⊤`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Val {
    /// No object (null / unassigned).
    #[default]
    Bottom,
    /// One of the given abstract objects. Invariant: non-empty, each key
    /// appears at most once (eras joined), size ≤ the configured bound.
    Types(BTreeMap<TypeKey, Era>),
    /// Any object.
    Top,
}

impl Val {
    /// A singleton value.
    pub fn one(ty: AbsType) -> Val {
        let mut m = BTreeMap::new();
        m.insert(ty.key, ty.era);
        Val::Types(m)
    }

    /// Returns `true` for `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Val::Bottom)
    }

    /// Returns `true` for `⊤`.
    pub fn is_top(&self) -> bool {
        matches!(self, Val::Top)
    }

    /// The types in this value (empty for `⊥` and `⊤`).
    pub fn types(&self) -> impl Iterator<Item = AbsType> + '_ {
        let map = match self {
            Val::Types(m) => Some(m),
            _ => None,
        };
        map.into_iter()
            .flat_map(|m| m.iter().map(|(&key, &era)| AbsType { key, era }))
    }

    /// Joins two values, collapsing to `⊤` beyond `bound` distinct keys.
    ///
    /// With `bound == 1` this is exactly Figure 6: same-site types join
    /// their ERAs, different sites are incomparable and give `⊤`.
    pub fn join(&self, other: &Val, bound: usize) -> Val {
        match (self, other) {
            (Val::Bottom, v) | (v, Val::Bottom) => v.clone(),
            (Val::Top, _) | (_, Val::Top) => Val::Top,
            (Val::Types(a), Val::Types(b)) => {
                let mut out = a.clone();
                for (&key, &era) in b {
                    out.entry(key)
                        .and_modify(|e| *e = e.join(era))
                        .or_insert(era);
                }
                if out.len() > bound {
                    Val::Top
                } else {
                    Val::Types(out)
                }
            }
        }
    }

    /// Applies the iteration-boundary aging operator to every type.
    pub fn age(&self) -> Val {
        match self {
            Val::Types(m) => Val::Types(m.iter().map(|(&k, &e)| (k, e.age())).collect()),
            other => other.clone(),
        }
    }

    /// Returns `true` if any type (or `⊤`) may denote an object that
    /// persists across loop iterations.
    pub fn may_persist(&self) -> bool {
        match self {
            Val::Bottom => false,
            Val::Top => true,
            Val::Types(m) => m.values().any(|e| e.persists()),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Bottom => write!(f, "⊥"),
            Val::Top => write!(f, "⊤"),
            Val::Types(m) => {
                write!(f, "{{")?;
                for (i, (k, e)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "({k}, {e})")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// The base of an abstract heap effect: a concrete abstract type or the
/// unknown (`⊤`) object.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum EffectBase {
    /// A known abstract object.
    Type(AbsType),
    /// Any object.
    Top,
}

impl EffectBase {
    /// The ERA of the base (`⊤` bases conservatively persist).
    pub fn era(&self) -> Era {
        match self {
            EffectBase::Type(t) => t.era,
            EffectBase::Top => Era::Top,
        }
    }

    /// The site key, if known.
    pub fn key(&self) -> Option<TypeKey> {
        match self {
            EffectBase::Type(t) => Some(t.key),
            EffectBase::Top => None,
        }
    }
}

/// An abstract heap effect: a store `τ1 ▷_g τ2` or a load `τ1 ◁_g τ2`
/// (paper Figure 4), tagged with whether it was observed under the
/// designated loop and whether it executed inside standard-library code.
///
/// The library flag implements the stronger flows-in condition of the
/// paper's Section 4: a heap read performed by a library class (e.g. the
/// internal probe reads of `HashMap.put`) establishes a flows-in
/// relationship only if the loaded object is also returned to application
/// code — see `EffectSummary::returned_from_library`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AbsEffect {
    /// The moved object (`τ1`).
    pub value: AbsType,
    /// The field (`g`; arrays use the smashed `elem`).
    pub field: FieldId,
    /// The base object (`τ2`).
    pub base: EffectBase,
    /// `true` when the access executed (abstractly) inside the loop.
    pub inside_loop: bool,
    /// `true` when the access statement is in a library class.
    pub in_library: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(site: u32, era: Era) -> AbsType {
        AbsType::site(AllocSite(site), era)
    }

    #[test]
    fn join_same_site_joins_eras() {
        let a = Val::one(t(1, Era::Current));
        let b = Val::one(t(1, Era::Top));
        let j = a.join(&b, 4);
        let types: Vec<AbsType> = j.types().collect();
        assert_eq!(types, vec![t(1, Era::Top)]);
    }

    #[test]
    fn join_different_sites_bounded() {
        let a = Val::one(t(1, Era::Current));
        let b = Val::one(t(2, Era::Current));
        // Paper domain (bound 1): incomparable sites give ⊤.
        assert!(a.join(&b, 1).is_top());
        // Set domain keeps both.
        let j = a.join(&b, 4);
        assert_eq!(j.types().count(), 2);
    }

    #[test]
    fn bottom_is_identity_top_absorbs() {
        let a = Val::one(t(1, Era::Future));
        assert_eq!(Val::Bottom.join(&a, 4), a);
        assert!(a.join(&Val::Top, 4).is_top());
        assert!(Val::Bottom.is_bottom());
    }

    #[test]
    fn aging_maps_over_types() {
        let v = Val::one(t(1, Era::Current)).join(&Val::one(t(2, Era::Outside)), 4);
        let aged = v.age();
        let eras: Vec<Era> = aged.types().map(|ty| ty.era).collect();
        assert!(eras.contains(&Era::Top));
        assert!(eras.contains(&Era::Outside));
    }

    #[test]
    fn persistence() {
        assert!(!Val::one(t(1, Era::Current)).may_persist());
        assert!(Val::one(t(1, Era::Future)).may_persist());
        assert!(Val::one(t(1, Era::Outside)).may_persist());
        assert!(Val::Top.may_persist());
        assert!(!Val::Bottom.may_persist());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Val::Bottom.to_string(), "⊥");
        assert_eq!(Val::Top.to_string(), "⊤");
        assert_eq!(Val::one(t(1, Era::Current)).to_string(), "{(alloc#1, c)}");
        assert_eq!(
            AbsType::new(TypeKey::Globals, Era::Outside).to_string(),
            "(<globals>, 0)"
        );
    }
}
