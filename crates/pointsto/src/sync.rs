//! Poison-resistant lock acquisition.
//!
//! Worker panics are a survivable event everywhere in this workspace
//! (quarantine in `parallel_map_isolated`, request isolation in the
//! serve daemon), so a poisoned `Mutex`/`RwLock` must never cascade
//! into a second panic at the next lock site. Every value guarded by a
//! shared lock here is kept internally consistent across panics —
//! writers only ever insert finished values — which makes recovering
//! the guard sound. These helpers centralize the
//! `unwrap_or_else(|e| e.into_inner())` pattern so every lock site in
//! the workspace degrades identically.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks a `Mutex`, recovering the guard from a poisoned lock.
pub fn lock_resilient<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// Read-locks an `RwLock`, recovering the guard from a poisoned lock.
pub fn read_resilient<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks an `RwLock`, recovering the guard from a poisoned lock.
pub fn write_resilient<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn mutex_guard_survives_poisoning() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mutex = Mutex::new(7u32);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = lock_resilient(&mutex);
            panic!("poison the lock");
        }));
        std::panic::set_hook(hook);
        assert!(mutex.is_poisoned());
        assert_eq!(*lock_resilient(&mutex), 7);
        *lock_resilient(&mutex) = 8;
        assert_eq!(*lock_resilient(&mutex), 8);
    }

    #[test]
    fn rwlock_guards_survive_poisoning() {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let lock = RwLock::new(vec![1, 2, 3]);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = write_resilient(&lock);
            panic!("poison the lock");
        }));
        std::panic::set_hook(hook);
        assert!(lock.is_poisoned());
        assert_eq!(read_resilient(&lock).len(), 3);
        write_resilient(&lock).push(4);
        assert_eq!(read_resilient(&lock).len(), 4);
    }
}
