//! k-limited call-string calling contexts.
//!
//! The CFL-reachability formulation distinguishes objects "not only by
//! their allocation sites … but also by their calling contexts" (paper
//! Section 4). Contexts here are call strings: the stack of call sites
//! descended through, innermost last, truncated to the analysis's `k`
//! bound. An empty context is a *wildcard*: it stands for any calling
//! context (the state of a query that has not yet crossed a call boundary,
//! or whose history was truncated).

use leakchecker_ir::ids::CallSite;
use std::fmt;
use std::sync::Arc;

/// An immutable, cheaply clonable k-limited call string.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Context(Arc<Vec<CallSite>>);

impl Context {
    /// The empty (wildcard) context.
    pub fn empty() -> Context {
        Context::default()
    }

    /// Builds a context directly from frames (outermost first). Used by
    /// the interner to materialize arena entries without re-pushing.
    pub(crate) fn from_frames(frames: Vec<CallSite>) -> Context {
        Context(Arc::new(frames))
    }

    /// Returns `true` for the empty context.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The call sites, outermost first.
    pub fn frames(&self) -> &[CallSite] {
        &self.0
    }

    /// The innermost call site, if any.
    pub fn top(&self) -> Option<CallSite> {
        self.0.last().copied()
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Extends the context by descending through `site`, keeping at most
    /// the innermost `k` frames.
    pub fn push(&self, site: CallSite, k: usize) -> Context {
        let mut frames = (*self.0).clone();
        frames.push(site);
        while frames.len() > k {
            frames.remove(0);
        }
        Context(Arc::new(frames))
    }

    /// Ascends out of a call through `site`.
    ///
    /// Returns the caller context when the innermost frame is `site`;
    /// returns the wildcard when this context is empty (truncated history
    /// matches anything); returns `None` when the innermost frame is a
    /// *different* site — an unbalanced call/return path the CFL filter
    /// rejects.
    pub fn pop_matching(&self, site: CallSite) -> Option<Context> {
        match self.0.last() {
            None => Some(Context::empty()),
            Some(&top) if top == site => {
                let mut frames = (*self.0).clone();
                frames.pop();
                Some(Context(Arc::new(frames)))
            }
            Some(_) => None,
        }
    }

    /// Returns `true` if `self` and `other` could describe the same
    /// concrete call stack: one is a suffix-compatible truncation of the
    /// other (the wildcard is compatible with everything).
    pub fn compatible(&self, other: &Context) -> bool {
        let a = &self.0;
        let b = &other.0;
        let n = a.len().min(b.len());
        // Compare the innermost n frames.
        a[a.len() - n..] == b[b.len() - n..]
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "[*]");
        }
        write!(f, "[")?;
        for (i, site) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ">")?;
            }
            write!(f, "{site}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_k_limit() {
        let c = Context::empty()
            .push(CallSite(1), 2)
            .push(CallSite(2), 2)
            .push(CallSite(3), 2);
        assert_eq!(c.frames(), &[CallSite(2), CallSite(3)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.top(), Some(CallSite(3)));
    }

    #[test]
    fn pop_matching_balances_parentheses() {
        let c = Context::empty().push(CallSite(1), 8).push(CallSite(2), 8);
        let popped = c.pop_matching(CallSite(2)).unwrap();
        assert_eq!(popped.frames(), &[CallSite(1)]);
        // Mismatched close paren is rejected.
        assert!(c.pop_matching(CallSite(9)).is_none());
        // Wildcard matches anything.
        assert_eq!(
            Context::empty().pop_matching(CallSite(5)),
            Some(Context::empty())
        );
    }

    #[test]
    fn compatibility_is_suffix_based() {
        let long = Context::empty()
            .push(CallSite(1), 8)
            .push(CallSite(2), 8)
            .push(CallSite(3), 8);
        let short = Context::empty().push(CallSite(2), 8).push(CallSite(3), 8);
        let other = Context::empty().push(CallSite(9), 8).push(CallSite(3), 8);
        assert!(long.compatible(&short));
        assert!(short.compatible(&long));
        assert!(!long.compatible(&other));
        assert!(Context::empty().compatible(&long));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Context::empty().to_string(), "[*]");
        let c = Context::empty().push(CallSite(1), 8).push(CallSite(2), 8);
        assert_eq!(c.to_string(), "[call#1>call#2]");
    }
}
