//! Interned k-limited call-string contexts.
//!
//! The demand engine's hot loop clones a [`Context`] (an `Arc<Vec>`) on
//! every worklist step, memo probe, and visited-set insert. Interning
//! replaces those clones with a `Copy` [`CtxId`] handle into an
//! append-only arena: equal call strings always receive the same id, so
//! id equality *is* context equality and hashing an id is hashing a
//! `u32`.
//!
//! Each arena entry records its top frame and the id of its parent (the
//! context with the top frame removed), so the CFL transitions become
//! array reads:
//!
//! * `pop_matching` — compare the stored top frame, return the stored
//!   parent id;
//! * `push` — one probe of a `(CtxId, CallSite) → CtxId` transition
//!   cache; the slow path (first time a transition is taken) interns the
//!   k-limited extension and caches it.
//!
//! The arena is guarded by one `RwLock`: reads (resolve, pop, cached
//! push) share the lock, only first-time interning takes it exclusively.
//! This keeps the structure `Sync`, which is what lets the whole demand
//! engine be shared across scoped worker threads.

use crate::context::Context;
use crate::sync::{read_resilient, write_resilient};
use leakchecker_ir::ids::CallSite;
use std::collections::HashMap;
use std::fmt;
use std::sync::RwLock;

/// A `Copy` handle to an interned context. Ids are dense indices into
/// the arena; `CtxId::EMPTY` is always the wildcard context.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub u32);

impl CtxId {
    /// The empty (wildcard) context's id.
    pub const EMPTY: CtxId = CtxId(0);

    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

struct Entry {
    /// The materialized call string (outermost first).
    ctx: Context,
    /// Innermost frame (`None` only for the empty context).
    top: Option<CallSite>,
    /// Id of the context with the innermost frame removed.
    parent: CtxId,
}

struct Inner {
    entries: Vec<Entry>,
    by_ctx: HashMap<Context, CtxId>,
    /// `(caller-view id, call site) → callee-view id` push transitions.
    push_cache: HashMap<(CtxId, CallSite), CtxId>,
}

impl Inner {
    fn intern(&mut self, ctx: &Context) -> CtxId {
        if let Some(&id) = self.by_ctx.get(ctx) {
            return id;
        }
        let frames = ctx.frames();
        let parent = if frames.is_empty() {
            CtxId::EMPTY
        } else {
            self.intern(&Context::from_frames(frames[..frames.len() - 1].to_vec()))
        };
        let id = CtxId(u32::try_from(self.entries.len()).expect("context arena overflow"));
        self.entries.push(Entry {
            ctx: ctx.clone(),
            top: frames.last().copied(),
            parent,
        });
        self.by_ctx.insert(ctx.clone(), id);
        id
    }
}

/// The append-only context arena.
pub struct ContextInterner {
    /// Call-string limit applied by [`ContextInterner::push`].
    k: usize,
    inner: RwLock<Inner>,
}

impl ContextInterner {
    /// Creates an arena holding only the empty context, with push
    /// transitions k-limited to `k` frames.
    pub fn new(k: usize) -> ContextInterner {
        let mut inner = Inner {
            entries: Vec::new(),
            by_ctx: HashMap::new(),
            push_cache: HashMap::new(),
        };
        inner.intern(&Context::empty());
        ContextInterner {
            k,
            inner: RwLock::new(inner),
        }
    }

    /// The call-string limit in effect.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct contexts interned so far.
    pub fn len(&self) -> usize {
        read_resilient(&self.inner).entries.len()
    }

    /// `true` when only the empty context exists.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Interns a context, returning its stable id.
    pub fn intern(&self, ctx: &Context) -> CtxId {
        if ctx.is_empty() {
            return CtxId::EMPTY;
        }
        if let Some(&id) = read_resilient(&self.inner).by_ctx.get(ctx) {
            return id;
        }
        write_resilient(&self.inner).intern(ctx)
    }

    /// The materialized call string for an id (cheap `Arc` clone).
    pub fn resolve(&self, id: CtxId) -> Context {
        read_resilient(&self.inner).entries[id.index()].ctx.clone()
    }

    /// Extends `id` by descending through `site`, keeping at most the
    /// innermost `k` frames — the CFL *open parenthesis*.
    pub fn push(&self, id: CtxId, site: CallSite) -> CtxId {
        {
            let inner = read_resilient(&self.inner);
            if let Some(&next) = inner.push_cache.get(&(id, site)) {
                return next;
            }
        }
        let extended = self.resolve(id).push(site, self.k);
        let mut inner = write_resilient(&self.inner);
        let next = inner.intern(&extended);
        inner.push_cache.insert((id, site), next);
        next
    }

    /// Ascends out of a call through `site` — the CFL *close
    /// parenthesis*. Wildcard matches anything; a different innermost
    /// frame is an unbalanced path and returns `None`.
    pub fn pop_matching(&self, id: CtxId, site: CallSite) -> Option<CtxId> {
        if id == CtxId::EMPTY {
            return Some(CtxId::EMPTY);
        }
        let inner = read_resilient(&self.inner);
        let entry = &inner.entries[id.index()];
        (entry.top == Some(site)).then_some(entry.parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_id_zero() {
        let arena = ContextInterner::new(8);
        assert_eq!(arena.intern(&Context::empty()), CtxId::EMPTY);
        assert!(arena.resolve(CtxId::EMPTY).is_empty());
        assert!(arena.is_empty());
    }

    #[test]
    fn interning_is_stable_and_injective() {
        let arena = ContextInterner::new(8);
        let a = arena.push(CtxId::EMPTY, CallSite(1));
        let b = arena.push(a, CallSite(2));
        let b2 = arena.push(arena.push(CtxId::EMPTY, CallSite(1)), CallSite(2));
        assert_eq!(b, b2, "same call string, same id");
        assert_ne!(a, b);
        assert_eq!(arena.len(), 3, "empty + two strings");
    }

    #[test]
    fn ctxid_round_trips_k_limited_call_strings() {
        // Satellite requirement: an interned id resolves back to exactly
        // the k-limited call string Context::push would build.
        for k in [1usize, 2, 4, 8] {
            let arena = ContextInterner::new(k);
            let mut id = CtxId::EMPTY;
            let mut ctx = Context::empty();
            for s in 1..=10u32 {
                id = arena.push(id, CallSite(s));
                ctx = ctx.push(CallSite(s), k);
                assert_eq!(arena.resolve(id), ctx, "k={k} after frame {s}");
                assert_eq!(arena.intern(&ctx), id, "intern agrees with push");
                assert!(ctx.len() <= k);
            }
        }
    }

    #[test]
    fn pop_matching_mirrors_context_semantics() {
        let arena = ContextInterner::new(8);
        let ab = arena.push(arena.push(CtxId::EMPTY, CallSite(1)), CallSite(2));
        let a = arena.pop_matching(ab, CallSite(2)).unwrap();
        assert_eq!(arena.resolve(a).frames(), &[CallSite(1)]);
        assert_eq!(arena.pop_matching(ab, CallSite(9)), None, "unbalanced");
        assert_eq!(
            arena.pop_matching(CtxId::EMPTY, CallSite(5)),
            Some(CtxId::EMPTY),
            "wildcard matches anything"
        );
    }

    #[test]
    fn concurrent_interning_agrees() {
        let arena = ContextInterner::new(4);
        let ids: Vec<Vec<CtxId>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        (1..=32u32)
                            .map(|s| {
                                let a = arena.push(CtxId::EMPTY, CallSite(s % 7));
                                arena.push(a, CallSite(s % 5))
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other, "same transitions, same ids on every thread");
        }
    }
}
