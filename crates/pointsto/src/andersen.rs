//! Exhaustive Andersen-style points-to analysis.
//!
//! A whole-program, context-insensitive, flow-insensitive, subset-based
//! analysis with field-sensitive heap cells `(alloc-site, field)`. It is
//! deliberately the *textbook* algorithm: the demand-driven CFL engine is
//! differentially tested against it (every demand answer must be a subset
//! of the exhaustive answer after stripping contexts), and the concrete
//! interpreter's observed points-to facts must be a subset of both.

use crate::pag::{Node, NodeId, Pag};
use leakchecker_ir::ids::{AllocSite, FieldId};
use leakchecker_ir::Program;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// Result of the exhaustive analysis: context-insensitive points-to sets.
#[derive(Clone, Debug)]
pub struct Andersen {
    /// Points-to set per PAG node.
    var_pts: Vec<BTreeSet<AllocSite>>,
    /// Points-to set per heap cell `(site, field)`.
    heap_pts: HashMap<(AllocSite, FieldId), BTreeSet<AllocSite>>,
}

impl Andersen {
    /// Runs the analysis to a fixed point over `pag`.
    pub fn run(_program: &Program, pag: &Pag) -> Andersen {
        let n = pag.len();
        let mut var_pts: Vec<BTreeSet<AllocSite>> = vec![BTreeSet::new(); n];
        let mut heap_pts: HashMap<(AllocSite, FieldId), BTreeSet<AllocSite>> = HashMap::new();

        // Seed: allocation edges.
        let mut worklist: VecDeque<NodeId> = VecDeque::new();
        for (i, pts) in var_pts.iter_mut().enumerate() {
            let id = NodeId(i as u32);
            for &site in pag.allocs_into(id) {
                pts.insert(site);
            }
            if !pts.is_empty() {
                worklist.push_back(id);
            }
        }

        // Collect per-field access lists once.
        let fields: Vec<FieldId> = {
            let mut f: BTreeSet<FieldId> = BTreeSet::new();
            for i in 0..n {
                let _ = i;
            }
            // Fields are keyed inside the PAG; gather from load/store maps.
            for field in pag.all_fields() {
                f.insert(field);
            }
            f.into_iter().collect()
        };

        // Iterate to fixed point: copy edges + load/store constraints.
        let mut changed = true;
        while changed {
            changed = false;
            // Propagate along copy edges (ignore labels: context-insensitive).
            while let Some(node) = worklist.pop_front() {
                let pts = var_pts[node.index()].clone();
                for &(target, _) in pag.edges_out_of(node) {
                    let before = var_pts[target.index()].len();
                    var_pts[target.index()].extend(pts.iter().copied());
                    if var_pts[target.index()].len() != before {
                        worklist.push_back(target);
                        changed = true;
                    }
                }
            }
            // Apply field constraints.
            for &field in &fields {
                for store in pag.stores_of(field) {
                    let src_pts = var_pts[store.src.index()].clone();
                    let base_pts = var_pts[store.base.index()].clone();
                    for base in &base_pts {
                        let cell = heap_pts.entry((*base, field)).or_default();
                        let before = cell.len();
                        cell.extend(src_pts.iter().copied());
                        if cell.len() != before {
                            changed = true;
                        }
                    }
                }
                for load in pag.loads_of(field) {
                    let base_pts = var_pts[load.base.index()].clone();
                    let mut incoming = BTreeSet::new();
                    for base in &base_pts {
                        if let Some(cell) = heap_pts.get(&(*base, field)) {
                            incoming.extend(cell.iter().copied());
                        }
                    }
                    let before = var_pts[load.dst.index()].len();
                    var_pts[load.dst.index()].extend(incoming);
                    if var_pts[load.dst.index()].len() != before {
                        worklist.push_back(load.dst);
                        changed = true;
                    }
                }
            }
        }

        Andersen { var_pts, heap_pts }
    }

    /// The points-to set of a PAG node.
    pub fn points_to(&self, node: NodeId) -> &BTreeSet<AllocSite> {
        &self.var_pts[node.index()]
    }

    /// The points-to set of a node looked up by its [`Node`] key
    /// (empty set when the node does not exist in the PAG).
    pub fn points_to_node(&self, pag: &Pag, node: Node) -> BTreeSet<AllocSite> {
        pag.find(node)
            .map(|id| self.var_pts[id.index()].clone())
            .unwrap_or_default()
    }

    /// The contents of a heap cell `(site, field)`.
    pub fn heap_cell(&self, site: AllocSite, field: FieldId) -> Option<&BTreeSet<AllocSite>> {
        self.heap_pts.get(&(site, field))
    }

    /// Returns `true` if the two nodes may point to a common object.
    pub fn may_alias(&self, a: NodeId, b: NodeId) -> bool {
        let (small, large) = if self.var_pts[a.index()].len() <= self.var_pts[b.index()].len() {
            (&self.var_pts[a.index()], &self.var_pts[b.index()])
        } else {
            (&self.var_pts[b.index()], &self.var_pts[a.index()])
        };
        small.iter().any(|s| large.contains(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::{Algorithm, CallGraph};
    use leakchecker_frontend::compile;
    use leakchecker_ir::ids::LocalId;
    use leakchecker_ir::Program;

    fn analyze(src: &str) -> (Program, Pag, Andersen) {
        let unit = compile(src).unwrap();
        let cg = CallGraph::build(&unit.program, Algorithm::Rta);
        let pag = Pag::build(&unit.program, &cg);
        let a = Andersen::run(&unit.program, &pag);
        (unit.program, pag, a)
    }

    /// Finds the node of a named local in a method.
    fn local_node(p: &Program, pag: &Pag, path: &str, name: &str) -> NodeId {
        let m = p.method_by_path(path).unwrap();
        let idx = p
            .method(m)
            .locals
            .iter()
            .position(|l| l.name == name)
            .unwrap_or_else(|| panic!("no local {name} in {path}"));
        pag.find(Node::Local(m, LocalId::from_index(idx)))
            .unwrap_or_else(|| panic!("local {name} has no PAG node"))
    }

    #[test]
    fn direct_and_copied_allocations() {
        let (p, pag, a) = analyze("class C { static void main() { C x = new C(); C y = x; } }");
        let x = local_node(&p, &pag, "C.main", "x");
        let y = local_node(&p, &pag, "C.main", "y");
        assert_eq!(a.points_to(x).len(), 1);
        assert_eq!(a.points_to(x), a.points_to(y));
        assert!(a.may_alias(x, y));
    }

    #[test]
    fn heap_flow_through_fields() {
        let (p, pag, a) = analyze(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b = new Box();
                 Item i = new Item();
                 b.item = i;
                 Item j = b.item;
               }
             }",
        );
        let i = local_node(&p, &pag, "Main.main", "i");
        let j = local_node(&p, &pag, "Main.main", "j");
        assert_eq!(a.points_to(i), a.points_to(j));
        assert!(a.may_alias(i, j));
    }

    #[test]
    fn separate_objects_do_not_alias() {
        let (p, pag, a) =
            analyze("class C { static void main() { C x = new C(); C y = new C(); } }");
        let x = local_node(&p, &pag, "C.main", "x");
        let y = local_node(&p, &pag, "C.main", "y");
        assert!(!a.may_alias(x, y));
    }

    #[test]
    fn interprocedural_flow_through_return() {
        let (p, pag, a) = analyze(
            "class C {
               static C make() { C c = new C(); return c; }
               static void main() { C got = C.make(); }
             }",
        );
        let got = local_node(&p, &pag, "C.main", "got");
        assert_eq!(a.points_to(got).len(), 1);
    }

    #[test]
    fn context_insensitive_merging_is_expected() {
        // Both call sites of id() merge: x and y appear to alias. This is
        // the imprecision the demand-driven engine removes.
        let (p, pag, a) = analyze(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C x = C.id(new C());
                 C y = C.id(new C());
               }
             }",
        );
        let x = local_node(&p, &pag, "C.main", "x");
        let y = local_node(&p, &pag, "C.main", "y");
        assert!(a.may_alias(x, y), "Andersen merges call sites");
        assert_eq!(a.points_to(x).len(), 2);
    }

    #[test]
    fn flow_through_static_fields() {
        let (p, pag, a) = analyze(
            "class C {
               static C g;
               static void main() { C.g = new C(); C got = C.g; }
             }",
        );
        let got = local_node(&p, &pag, "C.main", "got");
        assert_eq!(a.points_to(got).len(), 1);
    }

    #[test]
    fn arrays_smash_to_elem() {
        let (p, pag, a) = analyze(
            "class C {
               static void main() {
                 C[] arr = new C[2];
                 arr[0] = new C();
                 C got = arr[1];
               }
             }",
        );
        let got = local_node(&p, &pag, "C.main", "got");
        // Index-insensitive: reading slot 1 sees the slot-0 store.
        assert_eq!(a.points_to(got).len(), 1);
    }
}
