//! Points-to analyses for the LeakChecker reproduction.
//!
//! Two engines over one pointer-assignment graph:
//!
//! * [`andersen`] — an exhaustive, context-insensitive, subset-based
//!   analysis (the textbook baseline, used for differential testing and
//!   as a fallback);
//! * [`demand`] — the demand-driven, context-sensitive CFL-reachability
//!   engine the paper's implementation relies on, with k-limited call
//!   strings and per-query budgets.
//!
//! See [`pag`] for graph construction and [`context`] for call strings.
//!
//! # Example
//!
//! ```
//! use leakchecker_frontend::compile;
//! use leakchecker_callgraph::{Algorithm, CallGraph};
//! use leakchecker_pointsto::pag::{Node, Pag};
//! use leakchecker_pointsto::demand::{DemandConfig, DemandPointsTo};
//! use leakchecker_pointsto::context::Context;
//! use leakchecker_ir::ids::LocalId;
//!
//! let unit = compile("class C { static void main() { C x = new C(); } }").unwrap();
//! let cg = CallGraph::build(&unit.program, Algorithm::Rta);
//! let pag = Pag::build(&unit.program, &cg);
//! let engine = DemandPointsTo::new(&unit.program, &pag, DemandConfig::default());
//! let main = unit.program.method_by_path("C.main").unwrap();
//! let result = engine.points_to(Node::Local(main, LocalId(0)), &Context::empty());
//! assert!(result.complete);
//! assert_eq!(result.objects.len(), 1);
//! ```

pub mod andersen;
pub mod context;
pub mod demand;
pub mod intern;
pub mod pag;
pub mod sync;

pub use andersen::Andersen;
pub use context::Context;
pub use demand::{
    CtxObject, DemandConfig, DemandPointsTo, EngineStats, PtResult, QueryStats, QueryTicket,
    SiteWitness, WitnessKind, WitnessStep,
};
pub use intern::{ContextInterner, CtxId};
pub use pag::{EdgeLabel, LoadStmt, Node, NodeId, Pag, StoreStmt};
pub use sync::{lock_resilient, read_resilient, write_resilient};
