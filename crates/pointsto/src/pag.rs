//! Pointer assignment graph (PAG) construction.
//!
//! The PAG encodes the program's reference-flow semantics as a graph:
//! nodes are variables (locals, per-method return nodes, static fields)
//! and edges are reference copies. Heap accesses are *not* edges — loads
//! and stores are recorded side tables that the demand-driven engine
//! matches through alias queries, exactly as in demand-driven
//! CFL-reachability points-to formulations.

use leakchecker_callgraph::CallGraph;
use leakchecker_ir::ids::{AllocSite, CallSite, FieldId, LocalId, MethodId, ARRAY_ELEM_FIELD};
use leakchecker_ir::stmt::Stmt;
use leakchecker_ir::visit::walk_stmts;
use leakchecker_ir::Program;
use std::collections::HashMap;

/// A PAG node.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Node {
    /// A local variable slot of a method.
    Local(MethodId, LocalId),
    /// The canonical return-value node of a method.
    Ret(MethodId),
    /// A static field (global).
    Static(FieldId),
}

/// Dense node index within a [`Pag`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into the PAG's node tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interprocedural copy edge label.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum EdgeLabel {
    /// An intraprocedural copy (no parenthesis).
    None,
    /// Entering a callee through call site `cs` (argument → parameter,
    /// an open parenthesis in the CFL).
    Enter(CallSite),
    /// Leaving a callee through call site `cs` (return → destination,
    /// a close parenthesis).
    Exit(CallSite),
}

/// A field load `dst = base.field`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct LoadStmt {
    /// Destination node.
    pub dst: NodeId,
    /// Base variable node.
    pub base: NodeId,
    /// The loaded field (arrays use `elem`).
    pub field: FieldId,
    /// The containing method.
    pub method: MethodId,
}

/// A field store `base.field = src`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct StoreStmt {
    /// Stored-value node.
    pub src: NodeId,
    /// Base variable node.
    pub base: NodeId,
    /// The written field (arrays use `elem`).
    pub field: FieldId,
    /// The containing method.
    pub method: MethodId,
}

/// The pointer assignment graph over a program's reachable methods.
#[derive(Clone, Debug)]
pub struct Pag {
    node_ids: HashMap<Node, NodeId>,
    nodes: Vec<Node>,
    /// `into[n]` = copy edges flowing *into* node `n`.
    into: Vec<Vec<(NodeId, EdgeLabel)>>,
    /// `out_of[n]` = copy edges flowing *out of* node `n`.
    out_of: Vec<Vec<(NodeId, EdgeLabel)>>,
    /// `allocs_into[n]` = allocation sites whose objects flow directly
    /// into node `n` (New statements assigning to it).
    allocs_into: Vec<Vec<AllocSite>>,
    /// All loads, indexed by field for alias matching.
    loads_by_field: HashMap<FieldId, Vec<LoadStmt>>,
    /// All stores, indexed by field.
    stores_by_field: HashMap<FieldId, Vec<StoreStmt>>,
}

impl Pag {
    /// Builds the PAG for every method reachable in `callgraph`.
    pub fn build(program: &Program, callgraph: &CallGraph) -> Pag {
        let mut pag = Pag {
            node_ids: HashMap::new(),
            nodes: Vec::new(),
            into: Vec::new(),
            out_of: Vec::new(),
            allocs_into: Vec::new(),
            loads_by_field: HashMap::new(),
            stores_by_field: HashMap::new(),
        };
        for method in callgraph.reachable_methods() {
            let body = &program.method(method).body;
            walk_stmts(body, &mut |stmt| {
                pag.add_stmt(program, callgraph, method, stmt);
            });
        }
        pag
    }

    /// Interns a node.
    pub fn node(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.node_ids.get(&node) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("PAG node overflow"));
        self.node_ids.insert(node, id);
        self.nodes.push(node);
        self.into.push(Vec::new());
        self.out_of.push(Vec::new());
        self.allocs_into.push(Vec::new());
        id
    }

    /// Looks up an existing node without creating it.
    pub fn find(&self, node: Node) -> Option<NodeId> {
        self.node_ids.get(&node).copied()
    }

    /// The node behind an id.
    pub fn node_info(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the PAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Copy edges flowing into `n` as `(source, label)` pairs.
    pub fn edges_into(&self, n: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.into[n.index()]
    }

    /// Copy edges flowing out of `n` as `(target, label)` pairs.
    pub fn edges_out_of(&self, n: NodeId) -> &[(NodeId, EdgeLabel)] {
        &self.out_of[n.index()]
    }

    /// Allocation sites assigned directly to `n`.
    pub fn allocs_into(&self, n: NodeId) -> &[AllocSite] {
        &self.allocs_into[n.index()]
    }

    /// All loads of `field`.
    pub fn loads_of(&self, field: FieldId) -> &[LoadStmt] {
        self.loads_by_field.get(&field).map_or(&[], Vec::as_slice)
    }

    /// All stores to `field`.
    pub fn stores_of(&self, field: FieldId) -> &[StoreStmt] {
        self.stores_by_field.get(&field).map_or(&[], Vec::as_slice)
    }

    /// Every field that appears in at least one load or store.
    pub fn all_fields(&self) -> impl Iterator<Item = FieldId> + '_ {
        let mut fields: std::collections::BTreeSet<FieldId> =
            self.loads_by_field.keys().copied().collect();
        fields.extend(self.stores_by_field.keys().copied());
        fields.into_iter()
    }

    fn copy(&mut self, from: Node, to: Node, label: EdgeLabel) {
        let from = self.node(from);
        let to = self.node(to);
        self.into[to.index()].push((from, label));
        self.out_of[from.index()].push((to, label));
    }

    fn add_stmt(
        &mut self,
        program: &Program,
        callgraph: &CallGraph,
        method: MethodId,
        stmt: &Stmt,
    ) {
        let local = |l: &LocalId| Node::Local(method, *l);
        match stmt {
            Stmt::New { dst, site, .. } | Stmt::NewArray { dst, site, .. } => {
                let n = self.node(local(dst));
                self.allocs_into[n.index()].push(*site);
            }
            Stmt::Assign { dst, src } if is_ref(program, method, *dst) => {
                self.copy(local(src), local(dst), EdgeLabel::None);
            }
            Stmt::Load { dst, base, field } if program.field(*field).ty.is_reference() => {
                let l = LoadStmt {
                    dst: self.node(local(dst)),
                    base: self.node(local(base)),
                    field: *field,
                    method,
                };
                self.loads_by_field.entry(*field).or_default().push(l);
            }
            Stmt::Store { base, field, src } if program.field(*field).ty.is_reference() => {
                let s = StoreStmt {
                    src: self.node(local(src)),
                    base: self.node(local(base)),
                    field: *field,
                    method,
                };
                self.stores_by_field.entry(*field).or_default().push(s);
            }
            Stmt::ArrayLoad { dst, base, .. } if is_ref(program, method, *dst) => {
                let l = LoadStmt {
                    dst: self.node(local(dst)),
                    base: self.node(local(base)),
                    field: ARRAY_ELEM_FIELD,
                    method,
                };
                self.loads_by_field
                    .entry(ARRAY_ELEM_FIELD)
                    .or_default()
                    .push(l);
            }
            Stmt::ArrayStore { base, src, .. } if is_ref(program, method, *src) => {
                let s = StoreStmt {
                    src: self.node(local(src)),
                    base: self.node(local(base)),
                    field: ARRAY_ELEM_FIELD,
                    method,
                };
                self.stores_by_field
                    .entry(ARRAY_ELEM_FIELD)
                    .or_default()
                    .push(s);
            }
            Stmt::StaticLoad { dst, field } if program.field(*field).ty.is_reference() => {
                self.copy(Node::Static(*field), local(dst), EdgeLabel::None);
            }
            Stmt::StaticStore { field, src } if program.field(*field).ty.is_reference() => {
                self.copy(local(src), Node::Static(*field), EdgeLabel::None);
            }
            Stmt::Call {
                dst,
                receiver,
                args,
                site,
                ..
            } => {
                for &target in callgraph.targets(*site) {
                    let callee = program.method(target);
                    if !callee.is_static {
                        if let Some(r) = receiver {
                            self.copy(
                                local(r),
                                Node::Local(target, LocalId(0)),
                                EdgeLabel::Enter(*site),
                            );
                        }
                    }
                    let offset = usize::from(!callee.is_static);
                    for (i, arg) in args.iter().enumerate() {
                        if is_ref(program, method, *arg) {
                            self.copy(
                                local(arg),
                                Node::Local(target, LocalId::from_index(offset + i)),
                                EdgeLabel::Enter(*site),
                            );
                        }
                    }
                    if let Some(d) = dst {
                        if is_ref(program, method, *d) {
                            self.copy(Node::Ret(target), local(d), EdgeLabel::Exit(*site));
                        }
                    }
                }
            }
            Stmt::Return(Some(v)) if is_ref(program, method, *v) => {
                self.copy(local(v), Node::Ret(method), EdgeLabel::None);
            }
            _ => {}
        }
    }
}

fn is_ref(program: &Program, method: MethodId, local: LocalId) -> bool {
    program.method(method).locals[local.index()]
        .ty
        .is_reference()
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::Algorithm;
    use leakchecker_frontend::compile;

    fn pag_for(src: &str) -> (leakchecker_ir::Program, Pag) {
        let unit = compile(src).unwrap();
        let cg = CallGraph::build(&unit.program, Algorithm::Rta);
        let pag = Pag::build(&unit.program, &cg);
        (unit.program, pag)
    }

    #[test]
    fn assignments_create_copy_edges() {
        let (p, pag) = pag_for("class C { static void main() { C a = new C(); C b = a; } }");
        let main = p.entry().unwrap();
        // Find b's node: it has one incoming copy edge from a's node.
        let mut found = false;
        for (i, node) in (0..pag.len()).map(|i| (i, pag.node_info(NodeId(i as u32)))) {
            if let Node::Local(m, _) = node {
                if m == main && !pag.edges_into(NodeId(i as u32)).is_empty() {
                    found = true;
                }
            }
        }
        assert!(found, "expected at least one copy edge in main");
    }

    #[test]
    fn loads_and_stores_are_indexed_by_field() {
        let (p, pag) = pag_for(
            "class C {
               C f;
               static void main() {
                 C a = new C();
                 C b = new C();
                 a.f = b;
                 C c = a.f;
               }
             }",
        );
        let f = p.field_on(p.class_by_name("C").unwrap(), "f").unwrap();
        assert_eq!(pag.stores_of(f).len(), 1);
        assert_eq!(pag.loads_of(f).len(), 1);
        assert_eq!(pag.stores_of(f)[0].field, f);
    }

    #[test]
    fn array_accesses_use_elem_field() {
        let (_p, pag) = pag_for(
            "class C {
               static void main() {
                 C[] a = new C[4];
                 a[0] = new C();
                 C x = a[1];
               }
             }",
        );
        assert_eq!(pag.stores_of(ARRAY_ELEM_FIELD).len(), 1);
        assert_eq!(pag.loads_of(ARRAY_ELEM_FIELD).len(), 1);
    }

    #[test]
    fn calls_create_labeled_edges() {
        let (p, pag) = pag_for(
            "class C {
               C id(C x) { return x; }
               static void main() {
                 C c = new C();
                 C d = c.id(c);
               }
             }",
        );
        let id_m = p.method_by_path("C.id").unwrap();
        // Parameter x (slot 1) has an Enter edge; some local in main has an
        // Exit edge from Ret(id).
        let x_node = pag.find(Node::Local(id_m, LocalId(1))).unwrap();
        assert!(pag
            .edges_into(x_node)
            .iter()
            .any(|(_, l)| matches!(l, EdgeLabel::Enter(_))));
        let ret_node = pag.find(Node::Ret(id_m)).unwrap();
        assert!(pag
            .edges_out_of(ret_node)
            .iter()
            .any(|(_, l)| matches!(l, EdgeLabel::Exit(_))));
        // And the return statement created a copy into Ret(id).
        assert!(!pag.edges_into(ret_node).is_empty());
    }

    #[test]
    fn static_fields_are_global_nodes() {
        let (p, pag) = pag_for(
            "class C {
               static C global;
               static void main() {
                 C a = new C();
                 C.global = a;
                 C b = C.global;
               }
             }",
        );
        let g = p.field_on(p.class_by_name("C").unwrap(), "global").unwrap();
        let gn = pag.find(Node::Static(g)).unwrap();
        assert_eq!(pag.edges_into(gn).len(), 1);
        assert_eq!(pag.edges_out_of(gn).len(), 1);
    }

    #[test]
    fn primitive_assignments_are_ignored() {
        let (_p, pag) = pag_for("class C { static void main() { int a = 1; int b = a; } }");
        // No copy edges at all (only possibly nodes).
        for i in 0..pag.len() {
            assert!(pag.edges_into(NodeId(i as u32)).is_empty());
        }
    }
}
