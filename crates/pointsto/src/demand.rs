//! Demand-driven, context-sensitive points-to queries via
//! CFL-reachability.
//!
//! This is the engine the paper's implementation section describes:
//! "program semantics is encoded as a flow graph in which nodes represent
//! variables and edges represent propagation of object references.
//! Points-to relationships are determined by traversing the graph", with
//! interprocedural edges required to satisfy a matched-parentheses
//! property over call sites, and with queries issued *on demand* for
//! individual variables rather than after a whole-program analysis.
//!
//! A query walks the pointer-assignment graph backwards from a variable
//! toward the allocation sites that flow into it:
//!
//! * plain copy edges are followed directly;
//! * `Enter(cs)` edges (argument → parameter) are followed backwards only
//!   when the current call string's innermost frame is `cs` (or the
//!   string is the truncation wildcard) — a *close parenthesis*;
//! * `Exit(cs)` edges (return → destination) push `cs` — an *open
//!   parenthesis*;
//! * a load `dst = base.field` is matched against every store
//!   `sbase.field = src` whose base may alias `base` (a recursive alias
//!   query), continuing from `src`;
//! * static-field nodes erase the call string (globals are
//!   context-insensitive).
//!
//! Every query runs under a step *budget*; exhausting it marks the result
//! incomplete, which clients must treat conservatively. This mirrors the
//! refinement-based demand-driven points-to analyses the paper builds on.

use crate::context::Context;
use crate::pag::{EdgeLabel, LoadStmt, Node, NodeId, Pag};
use leakchecker_ir::ids::AllocSite;
use leakchecker_ir::Program;
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Tuning knobs for demand queries.
#[derive(Copy, Clone, Debug)]
pub struct DemandConfig {
    /// Call-string limit (frames kept per context).
    pub k: usize,
    /// Traversal step budget per top-level query (shared with nested
    /// alias queries).
    pub budget: usize,
    /// Depth limit for nested alias queries.
    pub max_alias_depth: usize,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            k: 8,
            budget: 100_000,
            max_alias_depth: 24,
        }
    }
}

/// A context-qualified abstract object.
pub type CtxObject = (AllocSite, Context);

/// The answer to a points-to query.
#[derive(Clone, Debug, Default)]
pub struct PtResult {
    /// Abstract objects that may flow to the queried variable.
    pub objects: BTreeSet<CtxObject>,
    /// `false` when the budget or depth limit was hit and the set may be
    /// missing objects — treat as "may point to anything" for soundness.
    pub complete: bool,
}

impl PtResult {
    /// The allocation sites, contexts stripped.
    pub fn sites(&self) -> BTreeSet<AllocSite> {
        self.objects.iter().map(|(s, _)| *s).collect()
    }
}

/// The demand-driven points-to analysis.
pub struct DemandPointsTo<'a> {
    program: &'a Program,
    pag: &'a Pag,
    config: DemandConfig,
    /// Loads keyed by their destination node.
    loads_by_dst: HashMap<NodeId, Vec<LoadStmt>>,
    /// Memoized answers for *completed* queries.
    memo: RefCell<HashMap<(NodeId, Context), PtResult>>,
}

impl<'a> DemandPointsTo<'a> {
    /// Creates the engine over a prebuilt PAG.
    pub fn new(program: &'a Program, pag: &'a Pag, config: DemandConfig) -> Self {
        let mut loads_by_dst: HashMap<NodeId, Vec<LoadStmt>> = HashMap::new();
        for field in pag.all_fields() {
            for load in pag.loads_of(field) {
                loads_by_dst.entry(load.dst).or_default().push(*load);
            }
        }
        DemandPointsTo {
            program,
            pag,
            config,
            loads_by_dst,
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DemandConfig {
        self.config
    }

    /// Points-to query for a [`Node`] under `ctx`.
    ///
    /// Returns an empty incomplete result for nodes absent from the PAG
    /// (never-assigned variables).
    pub fn points_to(&self, node: Node, ctx: &Context) -> PtResult {
        match self.pag.find(node) {
            Some(id) => {
                let mut budget = self.config.budget;
                self.query(id, ctx.clone(), &mut budget, 0)
            }
            None => PtResult {
                objects: BTreeSet::new(),
                complete: true,
            },
        }
    }

    /// May the two variables point to the same object? Incomplete queries
    /// answer `true` (conservative).
    pub fn may_alias(&self, a: Node, ctx_a: &Context, b: Node, ctx_b: &Context) -> bool {
        let ra = self.points_to(a, ctx_a);
        let rb = self.points_to(b, ctx_b);
        if !ra.complete || !rb.complete {
            return true;
        }
        let sa = ra.sites();
        let sb = rb.sites();
        sa.iter().any(|s| sb.contains(s))
    }

    fn query(&self, start: NodeId, ctx: Context, budget: &mut usize, depth: usize) -> PtResult {
        if let Some(hit) = self.memo.borrow().get(&(start, ctx.clone())) {
            return hit.clone();
        }
        if depth > self.config.max_alias_depth {
            return PtResult {
                objects: BTreeSet::new(),
                complete: false,
            };
        }
        let mut objects: BTreeSet<CtxObject> = BTreeSet::new();
        let mut complete = true;
        let mut visited: HashSet<(NodeId, Context)> = HashSet::new();
        let mut stack: Vec<(NodeId, Context)> = vec![(start, ctx.clone())];
        visited.insert((start, ctx.clone()));

        while let Some((node, cur)) = stack.pop() {
            if *budget == 0 {
                complete = false;
                break;
            }
            *budget -= 1;

            // Allocation seeds.
            for &site in self.pag.allocs_into(node) {
                objects.insert((site, cur.clone()));
            }

            // Statics erase context.
            let erase = matches!(self.pag.node_info(node), Node::Static(_));

            // Copy edges (with CFL parenthesis matching).
            for &(src, label) in self.pag.edges_into(node) {
                let next_ctx = match label {
                    EdgeLabel::None => {
                        if erase {
                            Some(Context::empty())
                        } else {
                            Some(cur.clone())
                        }
                    }
                    // Backwards over arg->param: leaving the callee.
                    EdgeLabel::Enter(cs) => cur.pop_matching(cs),
                    // Backwards over ret->dst: entering the callee.
                    EdgeLabel::Exit(cs) => Some(cur.push(cs, self.config.k)),
                };
                if let Some(nc) = next_ctx {
                    if visited.insert((src, nc.clone())) {
                        stack.push((src, nc));
                    }
                }
            }

            // Field loads: match against may-aliased stores.
            if let Some(loads) = self.loads_by_dst.get(&node) {
                let loads = loads.clone();
                for load in loads {
                    let base_result = self.query(load.base, cur.clone(), budget, depth + 1);
                    if !base_result.complete {
                        complete = false;
                    }
                    let base_sites = base_result.sites();
                    for store in self.pag.stores_of(load.field) {
                        let sbase_result =
                            self.query(store.base, Context::empty(), budget, depth + 1);
                        if !sbase_result.complete {
                            complete = false;
                        }
                        let alias = !base_result.complete
                            || !sbase_result.complete
                            || sbase_result.sites().iter().any(|s| base_sites.contains(s));
                        if alias {
                            let entry = (store.src, Context::empty());
                            if visited.insert(entry.clone()) {
                                stack.push(entry);
                            }
                        }
                    }
                }
            }
        }

        let result = PtResult { objects, complete };
        if result.complete {
            self.memo
                .borrow_mut()
                .insert((start, ctx), result.clone());
        }
        let _ = self.program;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::{Algorithm, CallGraph};
    use leakchecker_frontend::compile;
    use leakchecker_ir::ids::LocalId;
    use leakchecker_ir::Program;

    struct Fixture {
        program: Program,
        pag: Pag,
    }

    impl Fixture {
        fn new(src: &str) -> Fixture {
            let unit = compile(src).unwrap();
            let cg = CallGraph::build(&unit.program, Algorithm::Rta);
            let pag = Pag::build(&unit.program, &cg);
            Fixture {
                program: unit.program,
                pag,
            }
        }

        fn engine(&self) -> DemandPointsTo<'_> {
            DemandPointsTo::new(&self.program, &self.pag, DemandConfig::default())
        }

        fn local(&self, path: &str, name: &str) -> Node {
            let m = self.program.method_by_path(path).unwrap();
            let idx = self
                .program
                .method(m)
                .locals
                .iter()
                .position(|l| l.name == name)
                .unwrap_or_else(|| panic!("no local {name}"));
            Node::Local(m, LocalId::from_index(idx))
        }
    }

    #[test]
    fn direct_allocation() {
        let f = Fixture::new("class C { static void main() { C x = new C(); } }");
        let e = f.engine();
        let r = e.points_to(f.local("C.main", "x"), &Context::empty());
        assert!(r.complete);
        assert_eq!(r.objects.len(), 1);
    }

    #[test]
    fn context_sensitivity_distinguishes_call_sites() {
        // The id() factory: Andersen merges, the demand engine does not.
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C a = new C();
                 C b = new C();
                 C x = C.id(a);
                 C y = C.id(b);
               }
             }",
        );
        let e = f.engine();
        let rx = e.points_to(f.local("C.main", "x"), &Context::empty());
        let ry = e.points_to(f.local("C.main", "y"), &Context::empty());
        assert!(rx.complete && ry.complete);
        assert_eq!(rx.sites().len(), 1, "{rx:?}");
        assert_eq!(ry.sites().len(), 1, "{ry:?}");
        assert_ne!(rx.sites(), ry.sites());
        assert!(!e.may_alias(
            f.local("C.main", "x"),
            &Context::empty(),
            f.local("C.main", "y"),
            &Context::empty()
        ));
    }

    #[test]
    fn heap_flow_via_alias_matching() {
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b = new Box();
                 Item i = new Item();
                 b.item = i;
                 Item j = b.item;
               }
             }",
        );
        let e = f.engine();
        let rj = e.points_to(f.local("Main.main", "j"), &Context::empty());
        assert!(rj.complete);
        assert_eq!(rj.sites(), {
            let ri = e.points_to(f.local("Main.main", "i"), &Context::empty());
            ri.sites()
        });
    }

    #[test]
    fn distinct_boxes_do_not_conflate() {
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b1 = new Box();
                 Box b2 = new Box();
                 Item i1 = new Item();
                 Item i2 = new Item();
                 b1.item = i1;
                 b2.item = i2;
                 Item j = b1.item;
               }
             }",
        );
        let e = f.engine();
        let rj = e.points_to(f.local("Main.main", "j"), &Context::empty());
        assert!(rj.complete);
        // b1.item only holds i1's object.
        assert_eq!(rj.sites().len(), 1);
        let ri1 = e.points_to(f.local("Main.main", "i1"), &Context::empty());
        assert_eq!(rj.sites(), ri1.sites());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() { C x = C.id(C.id(C.id(new C()))); }
             }",
        );
        let pag = &f.pag;
        let e = DemandPointsTo::new(
            &f.program,
            pag,
            DemandConfig {
                budget: 2,
                ..DemandConfig::default()
            },
        );
        let r = e.points_to(f.local("C.main", "x"), &Context::empty());
        assert!(!r.complete);
        // Conservative alias answer under exhaustion.
        assert!(e.may_alias(
            f.local("C.main", "x"),
            &Context::empty(),
            f.local("C.main", "x"),
            &Context::empty()
        ));
    }

    #[test]
    fn flows_through_static_erase_context() {
        let f = Fixture::new(
            "class C {
               static C g;
               static void set(C v) { C.g = v; }
               static void main() {
                 C.set(new C());
                 C got = C.g;
               }
             }",
        );
        let e = f.engine();
        let r = e.points_to(f.local("C.main", "got"), &Context::empty());
        assert!(r.complete);
        assert_eq!(r.sites().len(), 1);
    }

    #[test]
    fn results_subset_of_andersen() {
        // Differential: every demand answer must be within Andersen's.
        let src = "
            class Node { Node next; Payload p; }
            class Payload { }
            class Main {
              static Node build(int n) {
                Node head = null;
                int i = 0;
                while (i < n) {
                  Node fresh = new Node();
                  fresh.next = head;
                  fresh.p = new Payload();
                  head = fresh;
                  i = i + 1;
                }
                return head;
              }
              static void main() {
                Node list = Main.build(10);
                Node cur = list;
                while (cur != null) {
                  Payload q = cur.p;
                  cur = cur.next;
                }
              }
            }";
        let f = Fixture::new(src);
        let e = f.engine();
        let andersen = crate::andersen::Andersen::run(&f.program, &f.pag);
        for (path, name) in [
            ("Main.main", "list"),
            ("Main.main", "cur"),
            ("Main.main", "q"),
            ("Main.build", "head"),
            ("Main.build", "fresh"),
        ] {
            let node = f.local(path, name);
            let demand = e.points_to(node, &Context::empty());
            if demand.complete {
                let exhaustive = andersen.points_to_node(&f.pag, node);
                for site in demand.sites() {
                    assert!(
                        exhaustive.contains(&site),
                        "{path}.{name}: demand found {site} missing from Andersen"
                    );
                }
            }
        }
    }
}
