//! Demand-driven, context-sensitive points-to queries via
//! CFL-reachability.
//!
//! This is the engine the paper's implementation section describes:
//! "program semantics is encoded as a flow graph in which nodes represent
//! variables and edges represent propagation of object references.
//! Points-to relationships are determined by traversing the graph", with
//! interprocedural edges required to satisfy a matched-parentheses
//! property over call sites, and with queries issued *on demand* for
//! individual variables rather than after a whole-program analysis.
//!
//! A query walks the pointer-assignment graph backwards from a variable
//! toward the allocation sites that flow into it:
//!
//! * plain copy edges are followed directly;
//! * `Enter(cs)` edges (argument → parameter) are followed backwards only
//!   when the current call string's innermost frame is `cs` (or the
//!   string is the truncation wildcard) — a *close parenthesis*;
//! * `Exit(cs)` edges (return → destination) push `cs` — an *open
//!   parenthesis*;
//! * a load `dst = base.field` is matched against every store
//!   `sbase.field = src` whose base may alias `base` (a recursive alias
//!   query), continuing from `src`;
//! * static-field nodes erase the call string (globals are
//!   context-insensitive).
//!
//! Every query runs under a step *budget*; exhausting it marks the result
//! incomplete, which clients must treat conservatively. This mirrors the
//! refinement-based demand-driven points-to analyses the paper builds on.

use crate::context::Context;
use crate::intern::{ContextInterner, CtxId};
use crate::pag::{EdgeLabel, LoadStmt, Node, NodeId, Pag};
use crate::sync::{read_resilient, write_resilient};
use leakchecker_ir::ids::{AllocSite, CallSite, FieldId};
use leakchecker_ir::Program;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Tuning knobs for demand queries.
#[derive(Copy, Clone, Debug)]
pub struct DemandConfig {
    /// Call-string limit (frames kept per context).
    pub k: usize,
    /// Traversal step budget per top-level query (shared with nested
    /// alias queries).
    pub budget: usize,
    /// Depth limit for nested alias queries.
    pub max_alias_depth: usize,
}

impl Default for DemandConfig {
    fn default() -> Self {
        DemandConfig {
            k: 8,
            budget: 100_000,
            max_alias_depth: 24,
        }
    }
}

/// A context-qualified abstract object.
pub type CtxObject = (AllocSite, Context);

/// The answer to a points-to query.
#[derive(Clone, Debug, Default)]
pub struct PtResult {
    /// Abstract objects that may flow to the queried variable.
    pub objects: BTreeSet<CtxObject>,
    /// `false` when the budget or depth limit was hit and the set may be
    /// missing objects — treat as "may point to anything" for soundness.
    pub complete: bool,
}

impl PtResult {
    /// The allocation sites, contexts stripped.
    pub fn sites(&self) -> BTreeSet<AllocSite> {
        self.objects.iter().map(|(s, _)| *s).collect()
    }
}

/// Per-query counters, returned by
/// [`DemandPointsTo::points_to_with_stats`].
#[derive(Copy, Clone, Debug, Default)]
pub struct QueryStats {
    /// Worklist steps taken (including nested alias queries).
    pub steps: u64,
    /// Memo-table hits that short-circuited a sub-query.
    pub memo_hits: u64,
    /// `true` when the step budget ran out.
    pub budget_exhausted: bool,
    /// `true` when a cooperative stop token or deadline cut the query
    /// short (the result is incomplete for an external reason, not
    /// because the work itself was too large).
    pub interrupted: bool,
}

/// Cooperative controls for one governed query.
///
/// A ticket overrides the engine-wide budget and lets a caller thread a
/// shared cancellation token and a wall-clock deadline through the
/// traversal. Setting `use_memo` to `false` makes the query hermetic:
/// it neither reads nor writes the shared memo table, so its step count
/// — and therefore whether it completes under a given budget — depends
/// only on the query itself, never on what other threads computed first.
/// Governed clients that make *decisions* based on completeness need
/// that determinism; ungoverned clients should keep the memo on.
#[derive(Copy, Clone, Debug)]
pub struct QueryTicket<'t> {
    /// Step budget for this query (shared with its nested alias
    /// sub-queries).
    pub budget: usize,
    /// Checked periodically; when it reads `true` the query stops with
    /// `complete = false` and `interrupted = true`.
    pub stop: Option<&'t AtomicBool>,
    /// Wall-clock cutoff with the same effect as `stop`.
    pub deadline: Option<Instant>,
    /// Whether the shared memo table may serve or store results.
    pub use_memo: bool,
}

impl<'t> QueryTicket<'t> {
    /// A hermetic ticket: fixed budget, no external interruption, memo
    /// bypassed.
    pub fn hermetic(budget: usize) -> QueryTicket<'t> {
        QueryTicket {
            budget,
            stop: None,
            deadline: None,
            use_memo: false,
        }
    }
}

/// How often (in worklist steps) the traversal polls the stop token and
/// deadline. Keeps `Instant::now` off the per-step path.
const INTERRUPT_POLL_MASK: u64 = 0x7f;

/// How one provenance hop of a points-to derivation was justified.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessKind {
    /// A plain copy edge (`x = y`).
    Assign,
    /// An argument-to-parameter binding matched as a *close parenthesis*
    /// at this call site.
    ParamBind(CallSite),
    /// A return-to-destination binding pushed as an *open parenthesis*
    /// at this call site.
    ReturnBind(CallSite),
    /// Flow through a static field, erasing the call string.
    StaticErase,
    /// A load `dst = base.f` matched against a may-aliased store
    /// `sbase.f = src`.
    HeapMatch(FieldId),
}

/// One forward dataflow hop of a derivation: a reference flowed from
/// `from` (nearer the allocation) to `to` (nearer the queried variable).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessStep {
    /// The source node of the flow.
    pub from: Node,
    /// The destination node of the flow.
    pub to: Node,
    /// How the hop was justified.
    pub kind: WitnessKind,
    /// `true` when the hop crosses the application/library boundary.
    pub crosses_library: bool,
}

/// The provenance of one `(site, context)` answer: the chain of hops the
/// traversal followed from the allocation to the queried variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteWitness {
    /// The allocation site whose flow this witness explains.
    pub site: AllocSite,
    /// The calling context the site was found under.
    pub ctx: Context,
    /// Hops in dataflow order (allocation first, queried variable last).
    pub steps: Vec<WitnessStep>,
}

/// Provenance recorded during one traced traversal. The parent map is a
/// tree over visited `(node, ctx)` states (each state is pushed exactly
/// once, so first-write-wins is deterministic given the traversal
/// order), and `found` lists allocation seeds in pop order.
#[derive(Default)]
struct WitnessTape {
    parent: HashMap<(NodeId, CtxId), ((NodeId, CtxId), WitnessKind)>,
    found: Vec<(AllocSite, CtxId, (NodeId, CtxId))>,
}

/// Cumulative engine counters (snapshot of atomics; safe to read while
/// other threads keep querying).
#[derive(Copy, Clone, Debug, Default)]
pub struct EngineStats {
    /// Top-level queries answered.
    pub queries: u64,
    /// Total worklist steps across all queries.
    pub steps: u64,
    /// Total memo hits.
    pub memo_hits: u64,
    /// Queries (top-level) that exhausted their budget.
    pub budget_exhaustions: u64,
    /// Completed results currently memoized.
    pub memo_entries: usize,
    /// Distinct calling contexts interned.
    pub contexts_interned: usize,
}

/// Counters shared across threads.
#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    steps: AtomicU64,
    memo_hits: AtomicU64,
    budget_exhaustions: AtomicU64,
}

const MEMO_SHARDS: usize = 16;

/// One shard of the memo table: completed query results keyed by
/// `(node, interned context)`.
type MemoShard = RwLock<HashMap<(NodeId, CtxId), Arc<PtResult>>>;

/// A sharded `(NodeId, CtxId) → Arc<PtResult>` table. Concurrent queries
/// on different shards never contend; completed results are shared by
/// `Arc` instead of deep-cloned.
struct ShardedMemo {
    shards: Vec<MemoShard>,
}

impl ShardedMemo {
    fn new() -> ShardedMemo {
        ShardedMemo {
            shards: (0..MEMO_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, key: &(NodeId, CtxId)) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % MEMO_SHARDS
    }

    fn get(&self, key: &(NodeId, CtxId)) -> Option<Arc<PtResult>> {
        // A panicking (quarantined) worker must not poison the memo for
        // the rest of the run: the table only ever holds finished,
        // internally consistent `Arc<PtResult>` values, so recovering
        // the guard is safe.
        read_resilient(&self.shards[self.shard(key)])
            .get(key)
            .cloned()
    }

    fn insert(&self, key: (NodeId, CtxId), value: Arc<PtResult>) {
        write_resilient(&self.shards[self.shard(&key)]).insert(key, value);
    }

    fn len(&self) -> usize {
        self.shards.iter().map(|s| read_resilient(s).len()).sum()
    }
}

/// Mutable state threaded through one top-level query and its nested
/// alias sub-queries.
struct QueryState<'t> {
    budget: usize,
    stats: QueryStats,
    stop: Option<&'t AtomicBool>,
    deadline: Option<Instant>,
    use_memo: bool,
    /// `Some` only for traced queries; recording is a single `Option`
    /// check per edge push when disabled.
    witness: Option<WitnessTape>,
}

impl QueryState<'_> {
    /// Polls the cooperative stop token and the wall-clock deadline.
    /// Called every [`INTERRUPT_POLL_MASK`]+1 steps.
    fn interrupted(&self) -> bool {
        if let Some(stop) = self.stop {
            if stop.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }
}

/// The demand-driven points-to analysis.
///
/// The engine is `Sync`: one instance can serve points-to queries from
/// many scoped worker threads at once, sharing the context arena and the
/// memo table (completed sub-query results computed by one thread are
/// hits for every other).
pub struct DemandPointsTo<'a> {
    program: &'a Program,
    pag: &'a Pag,
    config: DemandConfig,
    /// Loads keyed by their destination node.
    loads_by_dst: HashMap<NodeId, Vec<LoadStmt>>,
    /// Interned call-string arena shared by all queries.
    interner: ContextInterner,
    /// Memoized answers for *completed* queries.
    memo: ShardedMemo,
    counters: Counters,
}

impl<'a> DemandPointsTo<'a> {
    /// Creates the engine over a prebuilt PAG.
    pub fn new(program: &'a Program, pag: &'a Pag, config: DemandConfig) -> Self {
        let mut loads_by_dst: HashMap<NodeId, Vec<LoadStmt>> = HashMap::new();
        for field in pag.all_fields() {
            for load in pag.loads_of(field) {
                loads_by_dst.entry(load.dst).or_default().push(*load);
            }
        }
        DemandPointsTo {
            program,
            pag,
            config,
            loads_by_dst,
            interner: ContextInterner::new(config.k),
            memo: ShardedMemo::new(),
            counters: Counters::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> DemandConfig {
        self.config
    }

    /// The shared context arena (exposed for clients that want to keep
    /// working with `CtxId` handles).
    pub fn interner(&self) -> &ContextInterner {
        &self.interner
    }

    /// Snapshot of the cumulative engine counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            queries: self.counters.queries.load(Ordering::Relaxed),
            steps: self.counters.steps.load(Ordering::Relaxed),
            memo_hits: self.counters.memo_hits.load(Ordering::Relaxed),
            budget_exhaustions: self.counters.budget_exhaustions.load(Ordering::Relaxed),
            memo_entries: self.memo.len(),
            contexts_interned: self.interner.len(),
        }
    }

    /// Points-to query for a [`Node`] under `ctx`.
    ///
    /// Returns an empty incomplete result for nodes absent from the PAG
    /// (never-assigned variables).
    pub fn points_to(&self, node: Node, ctx: &Context) -> PtResult {
        self.points_to_with_stats(node, ctx).0
    }

    /// Like [`DemandPointsTo::points_to`], also returning the per-query
    /// counters.
    pub fn points_to_with_stats(&self, node: Node, ctx: &Context) -> (PtResult, QueryStats) {
        self.points_to_ticketed(
            node,
            ctx,
            &QueryTicket {
                budget: self.config.budget,
                stop: None,
                deadline: None,
                use_memo: true,
            },
        )
    }

    /// Points-to query under explicit resource controls; see
    /// [`QueryTicket`]. The engine-wide counters still accumulate.
    pub fn points_to_ticketed(
        &self,
        node: Node,
        ctx: &Context,
        ticket: &QueryTicket,
    ) -> (PtResult, QueryStats) {
        let (result, stats, _) = self.run_query(node, ctx, ticket, false);
        (result, stats)
    }

    /// Like [`DemandPointsTo::points_to_ticketed`], additionally
    /// recording, per abstract object in the answer, the provenance
    /// chain the traversal followed from its allocation seed to the
    /// queried variable.
    ///
    /// Traced queries always bypass the memo table (a memoized result
    /// carries no provenance, and determinism requires the recorded
    /// chain to depend only on the query, never on what other threads
    /// computed first), so repeated traced queries yield byte-identical
    /// witnesses.
    pub fn points_to_traced(
        &self,
        node: Node,
        ctx: &Context,
        ticket: &QueryTicket,
    ) -> (PtResult, QueryStats, Vec<SiteWitness>) {
        self.run_query(node, ctx, ticket, true)
    }

    fn run_query(
        &self,
        node: Node,
        ctx: &Context,
        ticket: &QueryTicket,
        traced: bool,
    ) -> (PtResult, QueryStats, Vec<SiteWitness>) {
        match self.pag.find(node) {
            Some(id) => {
                let mut state = QueryState {
                    budget: ticket.budget,
                    stats: QueryStats::default(),
                    stop: ticket.stop,
                    deadline: ticket.deadline,
                    use_memo: ticket.use_memo && !traced,
                    witness: traced.then(WitnessTape::default),
                };
                let result = self.query(id, self.interner.intern(ctx), &mut state, 0);
                self.counters.queries.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .steps
                    .fetch_add(state.stats.steps, Ordering::Relaxed);
                self.counters
                    .memo_hits
                    .fetch_add(state.stats.memo_hits, Ordering::Relaxed);
                if state.stats.budget_exhausted {
                    self.counters
                        .budget_exhaustions
                        .fetch_add(1, Ordering::Relaxed);
                }
                let witnesses = match state.witness.take() {
                    Some(tape) => self.replay_tape(tape),
                    None => Vec::new(),
                };
                ((*result).clone(), state.stats, witnesses)
            }
            None => (
                PtResult {
                    objects: BTreeSet::new(),
                    complete: true,
                },
                QueryStats::default(),
                Vec::new(),
            ),
        }
    }

    /// Walks each allocation seed's parent chain back to the query root,
    /// materializing hops in dataflow (allocation-first) order. One
    /// witness per distinct `(site, context)` answer, first found wins —
    /// deterministic because the traversal itself is.
    fn replay_tape(&self, tape: WitnessTape) -> Vec<SiteWitness> {
        let mut witnesses = Vec::new();
        let mut seen: HashSet<(AllocSite, CtxId)> = HashSet::new();
        for (site, ctx_id, mut key) in tape.found {
            if !seen.insert((site, ctx_id)) {
                continue;
            }
            let mut steps = Vec::new();
            while let Some((parent_key, kind)) = tape.parent.get(&key) {
                let from = self.pag.node_info(key.0);
                let to = self.pag.node_info(parent_key.0);
                steps.push(WitnessStep {
                    from,
                    to,
                    kind: kind.clone(),
                    crosses_library: self.node_in_library(from) != self.node_in_library(to),
                });
                key = *parent_key;
            }
            witnesses.push(SiteWitness {
                site,
                ctx: self.interner.resolve(ctx_id),
                steps,
            });
        }
        witnesses
    }

    /// Does the node live in library code? Library-boundary hops get
    /// tagged on the witness steps.
    fn node_in_library(&self, node: Node) -> bool {
        match node {
            Node::Local(m, _) | Node::Ret(m) => self.program.is_library_method(m),
            Node::Static(_) => false,
        }
    }

    /// Answers up to 64 points-to queries sharing one context in a
    /// single traversal.
    ///
    /// Queries rooted in the same method overlap heavily: they reach the
    /// same parameters, the same heap loads, the same library plumbing.
    /// Run individually (as governed refinement queries are — hermetic,
    /// memo off), each re-derives that shared frontier from scratch. The
    /// batch traversal visits each `(node, context)` state once,
    /// tracking *which roots* reach it in a 64-bit mask, and caches the
    /// state's successor list — including the expensive load-vs-store
    /// alias matching — so nested alias sub-queries run once per state
    /// instead of once per root.
    ///
    /// Returns one [`PtResult`] per root, in input order. The step
    /// budget is shared by the whole batch (size it accordingly, e.g.
    /// per-query budget × batch size); on exhaustion or interruption
    /// *every* root is conservatively marked incomplete, so completeness
    /// stays deterministic — it depends only on the batch and its
    /// ticket, never on which root "caused" the overrun. The memo table
    /// is neither read nor written: batch callers are governed clients
    /// that need hermetic step counts.
    ///
    /// A complete batch answer for a root is identical to that root's
    /// individual complete answer: both are the closure of the same
    /// successor relation from the same seed.
    ///
    /// # Panics
    ///
    /// Panics when given more than 64 roots (the mask width).
    pub fn points_to_batch(
        &self,
        roots: &[Node],
        ctx: &Context,
        ticket: &QueryTicket,
    ) -> (Vec<PtResult>, QueryStats) {
        assert!(
            roots.len() <= 64,
            "points_to_batch takes at most 64 roots, got {}",
            roots.len()
        );
        let mut state = QueryState {
            budget: ticket.budget,
            stats: QueryStats::default(),
            stop: ticket.stop,
            deadline: ticket.deadline,
            use_memo: false,
            witness: None,
        };
        let ctx_id = self.interner.intern(ctx);
        let mut objects: Vec<BTreeSet<CtxObject>> = vec![BTreeSet::new(); roots.len()];
        let mut complete = true;

        // Per-state mask of roots whose exploration has reached it; a
        // state re-enters the worklist only when *new* bits arrive.
        let mut mask: HashMap<(NodeId, CtxId), u64> = HashMap::new();
        let mut stack: Vec<(NodeId, CtxId, u64)> = Vec::new();
        for (i, root) in roots.iter().enumerate() {
            // Absent nodes (never-assigned variables) keep an empty
            // complete result, matching the single-query behavior.
            if let Some(id) = self.pag.find(*root) {
                let entry = mask.entry((id, ctx_id)).or_insert(0);
                let add = (1u64 << i) & !*entry;
                if add != 0 {
                    *entry |= add;
                    stack.push((id, ctx_id, add));
                }
            }
        }

        // Successor lists cached per state — this is where the batch
        // sharing happens: the alias matching behind a loaded field is
        // resolved on first arrival and replayed for every later root.
        type SuccCache = HashMap<(NodeId, CtxId), Arc<Vec<(NodeId, CtxId)>>>;
        let mut succs: SuccCache = HashMap::new();

        while let Some((node, cur, bits)) = stack.pop() {
            if state.budget == 0 {
                complete = false;
                state.stats.budget_exhausted = true;
                break;
            }
            if state.stats.steps & INTERRUPT_POLL_MASK == 0 && state.interrupted() {
                complete = false;
                state.stats.interrupted = true;
                break;
            }
            state.budget -= 1;
            state.stats.steps += 1;

            // Allocation seeds, credited to exactly the newly arrived
            // roots (earlier arrivals already collected them).
            let allocs = self.pag.allocs_into(node);
            if !allocs.is_empty() {
                let cur_ctx = self.interner.resolve(cur);
                for &site in allocs {
                    let mut b = bits;
                    while b != 0 {
                        let i = b.trailing_zeros() as usize;
                        objects[i].insert((site, cur_ctx.clone()));
                        b &= b - 1;
                    }
                }
            }

            let key = (node, cur);
            let list = match succs.get(&key) {
                Some(list) => Arc::clone(list),
                None => {
                    let mut list = Vec::new();
                    let erase = matches!(self.pag.node_info(node), Node::Static(_));
                    for &(src, label) in self.pag.edges_into(node) {
                        let next_ctx = match label {
                            EdgeLabel::None => {
                                if erase {
                                    Some(CtxId::EMPTY)
                                } else {
                                    Some(cur)
                                }
                            }
                            EdgeLabel::Enter(cs) => self.interner.pop_matching(cur, cs),
                            EdgeLabel::Exit(cs) => Some(self.interner.push(cur, cs)),
                        };
                        if let Some(nc) = next_ctx {
                            list.push((src, nc));
                        }
                    }
                    if let Some(loads) = self.loads_by_dst.get(&node) {
                        for load in loads {
                            let base_result = self.query(load.base, cur, &mut state, 1);
                            if !base_result.complete {
                                complete = false;
                            }
                            let base_sites = base_result.sites();
                            for store in self.pag.stores_of(load.field) {
                                let sbase_result =
                                    self.query(store.base, CtxId::EMPTY, &mut state, 1);
                                if !sbase_result.complete {
                                    complete = false;
                                }
                                let alias = !base_result.complete
                                    || !sbase_result.complete
                                    || sbase_result.sites().iter().any(|s| base_sites.contains(s));
                                if alias {
                                    list.push((store.src, CtxId::EMPTY));
                                }
                            }
                        }
                    }
                    let list = Arc::new(list);
                    succs.insert(key, Arc::clone(&list));
                    list
                }
            };
            for &(s, nc) in list.iter() {
                let entry = mask.entry((s, nc)).or_insert(0);
                let add = bits & !*entry;
                if add != 0 {
                    *entry |= add;
                    stack.push((s, nc, add));
                }
            }
        }

        self.counters
            .queries
            .fetch_add(roots.len() as u64, Ordering::Relaxed);
        self.counters
            .steps
            .fetch_add(state.stats.steps, Ordering::Relaxed);
        if state.stats.budget_exhausted {
            self.counters
                .budget_exhaustions
                .fetch_add(1, Ordering::Relaxed);
        }
        let results = objects
            .into_iter()
            .map(|objects| PtResult { objects, complete })
            .collect();
        (results, state.stats)
    }

    /// May the two variables point to the same object? Incomplete queries
    /// answer `true` (conservative).
    pub fn may_alias(&self, a: Node, ctx_a: &Context, b: Node, ctx_b: &Context) -> bool {
        let ra = self.points_to(a, ctx_a);
        let rb = self.points_to(b, ctx_b);
        if !ra.complete || !rb.complete {
            return true;
        }
        let sa = ra.sites();
        let sb = rb.sites();
        sa.iter().any(|s| sb.contains(s))
    }

    /// Internal CFL traversal, entirely on interned `CtxId` handles: the
    /// visited set hashes `(u32, u32)` pairs and context transitions are
    /// arena reads instead of `Arc<Vec>` clones. Contexts are only
    /// materialized when an allocation seed is recorded.
    fn query(
        &self,
        start: NodeId,
        ctx: CtxId,
        state: &mut QueryState,
        depth: usize,
    ) -> Arc<PtResult> {
        let key = (start, ctx);
        if state.use_memo {
            if let Some(hit) = self.memo.get(&key) {
                state.stats.memo_hits += 1;
                return hit;
            }
        }
        if depth > self.config.max_alias_depth {
            return Arc::new(PtResult {
                objects: BTreeSet::new(),
                complete: false,
            });
        }
        let mut objects: BTreeSet<CtxObject> = BTreeSet::new();
        let mut complete = true;
        let mut visited: HashSet<(NodeId, CtxId)> = HashSet::new();
        let mut stack: Vec<(NodeId, CtxId)> = vec![key];
        visited.insert(key);

        while let Some((node, cur)) = stack.pop() {
            if state.budget == 0 {
                complete = false;
                state.stats.budget_exhausted = true;
                break;
            }
            if state.stats.steps & INTERRUPT_POLL_MASK == 0 && state.interrupted() {
                complete = false;
                state.stats.interrupted = true;
                break;
            }
            state.budget -= 1;
            state.stats.steps += 1;

            // Allocation seeds.
            let allocs = self.pag.allocs_into(node);
            if !allocs.is_empty() {
                let cur_ctx = self.interner.resolve(cur);
                for &site in allocs {
                    objects.insert((site, cur_ctx.clone()));
                    if depth == 0 {
                        if let Some(tape) = state.witness.as_mut() {
                            tape.found.push((site, cur, (node, cur)));
                        }
                    }
                }
            }

            // Statics erase context.
            let erase = matches!(self.pag.node_info(node), Node::Static(_));

            // Copy edges (with CFL parenthesis matching).
            for &(src, label) in self.pag.edges_into(node) {
                let next_ctx = match label {
                    EdgeLabel::None => {
                        if erase {
                            Some(CtxId::EMPTY)
                        } else {
                            Some(cur)
                        }
                    }
                    // Backwards over arg->param: leaving the callee.
                    EdgeLabel::Enter(cs) => self.interner.pop_matching(cur, cs),
                    // Backwards over ret->dst: entering the callee.
                    EdgeLabel::Exit(cs) => Some(self.interner.push(cur, cs)),
                };
                if let Some(nc) = next_ctx {
                    if visited.insert((src, nc)) {
                        if depth == 0 {
                            if let Some(tape) = state.witness.as_mut() {
                                let kind = match label {
                                    EdgeLabel::None if erase => WitnessKind::StaticErase,
                                    EdgeLabel::None => WitnessKind::Assign,
                                    EdgeLabel::Enter(cs) => WitnessKind::ParamBind(cs),
                                    EdgeLabel::Exit(cs) => WitnessKind::ReturnBind(cs),
                                };
                                tape.parent.insert((src, nc), ((node, cur), kind));
                            }
                        }
                        stack.push((src, nc));
                    }
                }
            }

            // Field loads: match against may-aliased stores.
            if let Some(loads) = self.loads_by_dst.get(&node) {
                for load in loads {
                    let base_result = self.query(load.base, cur, state, depth + 1);
                    if !base_result.complete {
                        complete = false;
                    }
                    let base_sites = base_result.sites();
                    for store in self.pag.stores_of(load.field) {
                        let sbase_result = self.query(store.base, CtxId::EMPTY, state, depth + 1);
                        if !sbase_result.complete {
                            complete = false;
                        }
                        let alias = !base_result.complete
                            || !sbase_result.complete
                            || sbase_result.sites().iter().any(|s| base_sites.contains(s));
                        if alias {
                            let entry = (store.src, CtxId::EMPTY);
                            if visited.insert(entry) {
                                if depth == 0 {
                                    if let Some(tape) = state.witness.as_mut() {
                                        tape.parent.insert(
                                            entry,
                                            ((node, cur), WitnessKind::HeapMatch(load.field)),
                                        );
                                    }
                                }
                                stack.push(entry);
                            }
                        }
                    }
                }
            }
        }

        let result = Arc::new(PtResult { objects, complete });
        if result.complete && state.use_memo {
            self.memo.insert(key, Arc::clone(&result));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_callgraph::{Algorithm, CallGraph};
    use leakchecker_frontend::compile;
    use leakchecker_ir::ids::LocalId;
    use leakchecker_ir::Program;

    struct Fixture {
        program: Program,
        pag: Pag,
    }

    impl Fixture {
        fn new(src: &str) -> Fixture {
            let unit = compile(src).unwrap();
            let cg = CallGraph::build(&unit.program, Algorithm::Rta);
            let pag = Pag::build(&unit.program, &cg);
            Fixture {
                program: unit.program,
                pag,
            }
        }

        fn engine(&self) -> DemandPointsTo<'_> {
            DemandPointsTo::new(&self.program, &self.pag, DemandConfig::default())
        }

        fn local(&self, path: &str, name: &str) -> Node {
            let m = self.program.method_by_path(path).unwrap();
            let idx = self
                .program
                .method(m)
                .locals
                .iter()
                .position(|l| l.name == name)
                .unwrap_or_else(|| panic!("no local {name}"));
            Node::Local(m, LocalId::from_index(idx))
        }
    }

    #[test]
    fn direct_allocation() {
        let f = Fixture::new("class C { static void main() { C x = new C(); } }");
        let e = f.engine();
        let r = e.points_to(f.local("C.main", "x"), &Context::empty());
        assert!(r.complete);
        assert_eq!(r.objects.len(), 1);
    }

    #[test]
    fn context_sensitivity_distinguishes_call_sites() {
        // The id() factory: Andersen merges, the demand engine does not.
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C a = new C();
                 C b = new C();
                 C x = C.id(a);
                 C y = C.id(b);
               }
             }",
        );
        let e = f.engine();
        let rx = e.points_to(f.local("C.main", "x"), &Context::empty());
        let ry = e.points_to(f.local("C.main", "y"), &Context::empty());
        assert!(rx.complete && ry.complete);
        assert_eq!(rx.sites().len(), 1, "{rx:?}");
        assert_eq!(ry.sites().len(), 1, "{ry:?}");
        assert_ne!(rx.sites(), ry.sites());
        assert!(!e.may_alias(
            f.local("C.main", "x"),
            &Context::empty(),
            f.local("C.main", "y"),
            &Context::empty()
        ));
    }

    #[test]
    fn heap_flow_via_alias_matching() {
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b = new Box();
                 Item i = new Item();
                 b.item = i;
                 Item j = b.item;
               }
             }",
        );
        let e = f.engine();
        let rj = e.points_to(f.local("Main.main", "j"), &Context::empty());
        assert!(rj.complete);
        assert_eq!(rj.sites(), {
            let ri = e.points_to(f.local("Main.main", "i"), &Context::empty());
            ri.sites()
        });
    }

    #[test]
    fn distinct_boxes_do_not_conflate() {
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b1 = new Box();
                 Box b2 = new Box();
                 Item i1 = new Item();
                 Item i2 = new Item();
                 b1.item = i1;
                 b2.item = i2;
                 Item j = b1.item;
               }
             }",
        );
        let e = f.engine();
        let rj = e.points_to(f.local("Main.main", "j"), &Context::empty());
        assert!(rj.complete);
        // b1.item only holds i1's object.
        assert_eq!(rj.sites().len(), 1);
        let ri1 = e.points_to(f.local("Main.main", "i1"), &Context::empty());
        assert_eq!(rj.sites(), ri1.sites());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() { C x = C.id(C.id(C.id(new C()))); }
             }",
        );
        let pag = &f.pag;
        let e = DemandPointsTo::new(
            &f.program,
            pag,
            DemandConfig {
                budget: 2,
                ..DemandConfig::default()
            },
        );
        let r = e.points_to(f.local("C.main", "x"), &Context::empty());
        assert!(!r.complete);
        // Conservative alias answer under exhaustion.
        assert!(e.may_alias(
            f.local("C.main", "x"),
            &Context::empty(),
            f.local("C.main", "x"),
            &Context::empty()
        ));
    }

    #[test]
    fn flows_through_static_erase_context() {
        let f = Fixture::new(
            "class C {
               static C g;
               static void set(C v) { C.g = v; }
               static void main() {
                 C.set(new C());
                 C got = C.g;
               }
             }",
        );
        let e = f.engine();
        let r = e.points_to(f.local("C.main", "got"), &Context::empty());
        assert!(r.complete);
        assert_eq!(r.sites().len(), 1);
    }

    #[test]
    fn engine_is_sync_and_answers_concurrently() {
        fn assert_sync<T: Sync>(_: &T) {}
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C a = new C();
                 C x = C.id(a);
               }
             }",
        );
        let e = f.engine();
        assert_sync(&e);
        let node = f.local("C.main", "x");
        let results: Vec<PtResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| e.points_to(node, &Context::empty())))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &results {
            assert!(r.complete);
            assert_eq!(r.objects, results[0].objects);
        }
        let stats = e.stats();
        assert_eq!(stats.queries, 4);
        assert!(stats.steps > 0);
        assert!(stats.contexts_interned >= 1);
    }

    #[test]
    fn query_stats_count_steps_and_memo_hits() {
        let f = Fixture::new("class C { static void main() { C x = new C(); } }");
        let e = f.engine();
        let node = f.local("C.main", "x");
        let (r1, s1) = e.points_to_with_stats(node, &Context::empty());
        assert!(r1.complete);
        assert!(s1.steps > 0);
        assert!(!s1.budget_exhausted);
        // Second identical query is a pure memo hit: no traversal steps.
        let (r2, s2) = e.points_to_with_stats(node, &Context::empty());
        assert_eq!(r1.objects, r2.objects);
        assert_eq!(s2.steps, 0);
        assert_eq!(s2.memo_hits, 1);
    }

    #[test]
    fn hermetic_tickets_bypass_the_memo_and_are_deterministic() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() { C x = C.id(new C()); }
             }",
        );
        let e = f.engine();
        let node = f.local("C.main", "x");
        // Warm the memo with an ordinary query.
        let warm = e.points_to(node, &Context::empty());
        assert!(warm.complete);
        // A hermetic ticket must re-traverse from scratch: identical
        // step counts on every repetition, zero memo hits, same answer.
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (r1, s1) = e.points_to_ticketed(node, &Context::empty(), &ticket);
        let (r2, s2) = e.points_to_ticketed(node, &Context::empty(), &ticket);
        assert!(r1.complete && r2.complete);
        assert_eq!(r1.objects, warm.objects);
        assert_eq!(s1.memo_hits, 0);
        assert_eq!(s2.memo_hits, 0);
        assert!(s1.steps > 0);
        assert_eq!(s1.steps, s2.steps, "memo bypass makes steps reproducible");
    }

    #[test]
    fn ticket_budget_overrides_engine_budget() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() { C x = C.id(C.id(C.id(new C()))); }
             }",
        );
        let e = f.engine();
        let node = f.local("C.main", "x");
        let (r, s) = e.points_to_ticketed(node, &Context::empty(), &QueryTicket::hermetic(2));
        assert!(!r.complete);
        assert!(s.budget_exhausted);
        assert!(!s.interrupted);
        let (r2, s2) =
            e.points_to_ticketed(node, &Context::empty(), &QueryTicket::hermetic(100_000));
        assert!(r2.complete, "escalated budget finishes: {s2:?}");
        assert!(!s2.budget_exhausted);
    }

    #[test]
    fn stop_token_interrupts_a_query() {
        let f = Fixture::new("class C { static void main() { C x = new C(); } }");
        let e = f.engine();
        let node = f.local("C.main", "x");
        let stop = AtomicBool::new(true);
        let ticket = QueryTicket {
            stop: Some(&stop),
            ..QueryTicket::hermetic(100_000)
        };
        let (r, s) = e.points_to_ticketed(node, &Context::empty(), &ticket);
        assert!(!r.complete);
        assert!(s.interrupted);
        assert!(!s.budget_exhausted);
    }

    #[test]
    fn expired_deadline_interrupts_a_query() {
        let f = Fixture::new("class C { static void main() { C x = new C(); } }");
        let e = f.engine();
        let node = f.local("C.main", "x");
        let ticket = QueryTicket {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..QueryTicket::hermetic(100_000)
        };
        let (r, s) = e.points_to_ticketed(node, &Context::empty(), &ticket);
        assert!(!r.complete);
        assert!(s.interrupted);
    }

    #[test]
    fn traced_query_records_a_heap_match_chain() {
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class Main {
               static void main() {
                 Box b = new Box();
                 Item i = new Item();
                 b.item = i;
                 Item j = b.item;
               }
             }",
        );
        let e = f.engine();
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (r, _, witnesses) =
            e.points_to_traced(f.local("Main.main", "j"), &Context::empty(), &ticket);
        assert!(r.complete);
        assert_eq!(witnesses.len(), 1, "{witnesses:?}");
        let w = &witnesses[0];
        assert!(!w.steps.is_empty(), "chain must have at least one hop");
        assert!(
            w.steps
                .iter()
                .any(|s| matches!(s.kind, WitnessKind::HeapMatch(_))),
            "the load must be justified by a heap match: {:?}",
            w.steps
        );
        // The chain ends at the queried variable.
        assert_eq!(
            w.steps.last().unwrap().to,
            f.local("Main.main", "j"),
            "{:?}",
            w.steps
        );
        // No hop crosses a library boundary in an app-only program.
        assert!(w.steps.iter().all(|s| !s.crosses_library));
    }

    #[test]
    fn traced_queries_bypass_the_memo_and_are_deterministic() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() { C x = C.id(new C()); }
             }",
        );
        let e = f.engine();
        let node = f.local("C.main", "x");
        // Warm the memo: a traced query must ignore it.
        let warm = e.points_to(node, &Context::empty());
        let ticket = QueryTicket {
            use_memo: true,
            ..QueryTicket::hermetic(DemandConfig::default().budget)
        };
        let (r1, s1, w1) = e.points_to_traced(node, &Context::empty(), &ticket);
        let (r2, s2, w2) = e.points_to_traced(node, &Context::empty(), &ticket);
        assert!(r1.complete && r2.complete);
        assert_eq!(r1.objects, warm.objects, "tracing must not change answers");
        assert_eq!(s1.memo_hits, 0, "traced queries never read the memo");
        assert_eq!(s1.steps, s2.steps);
        assert_eq!(w1, w2, "witnesses are a function of the query alone");
        assert!(w1.iter().all(|w| w.steps.iter().any(|s| matches!(
            s.kind,
            WitnessKind::ReturnBind(_)
        ) || matches!(
            s.kind,
            WitnessKind::ParamBind(_)
        ))));
    }

    #[test]
    fn witness_tags_library_boundary_and_static_erase() {
        let f = Fixture::new(
            "library class Lib {
               static C make() { C c = new C(); return c; }
             }
             class C {
               static C g;
               static void main() {
                 C.g = Lib.make();
                 C got = C.g;
               }
             }",
        );
        let e = f.engine();
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (r, _, witnesses) =
            e.points_to_traced(f.local("C.main", "got"), &Context::empty(), &ticket);
        assert!(r.complete);
        assert_eq!(witnesses.len(), 1, "{witnesses:?}");
        let steps = &witnesses[0].steps;
        assert!(
            steps.iter().any(|s| s.crosses_library),
            "library-to-app return must be tagged: {steps:?}"
        );
        assert!(
            steps.iter().any(|s| s.kind == WitnessKind::StaticErase),
            "flow through the static erases context: {steps:?}"
        );
    }

    #[test]
    fn batch_matches_individual_queries() {
        // Two factory-returned variables plus a heap round-trip: every
        // batch answer must equal the root's individual hermetic answer.
        let f = Fixture::new(
            "class Box { Item item; }
             class Item { }
             class C {
               static Item id(Item v) { return v; }
               static void main() {
                 Box b = new Box();
                 Item i1 = new Item();
                 Item i2 = new Item();
                 Item x = C.id(i1);
                 Item y = C.id(i2);
                 b.item = i1;
                 Item j = b.item;
               }
             }",
        );
        let e = f.engine();
        let roots = [
            f.local("C.main", "x"),
            f.local("C.main", "y"),
            f.local("C.main", "j"),
            f.local("C.main", "i1"),
        ];
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (batch, stats) = e.points_to_batch(&roots, &Context::empty(), &ticket);
        assert_eq!(batch.len(), roots.len());
        assert!(stats.steps > 0);
        for (root, result) in roots.iter().zip(&batch) {
            assert!(result.complete);
            let (solo, _) = e.points_to_ticketed(*root, &Context::empty(), &ticket);
            assert_eq!(
                result.objects, solo.objects,
                "batch answer for {root:?} diverged from the individual query"
            );
        }
        assert_ne!(batch[0].sites(), batch[1].sites(), "contexts stay distinct");
    }

    #[test]
    fn batch_shares_frontier_across_same_method_roots() {
        // Both roots copy from the same load-bearing tail (two levels of
        // heap dereference). Run separately, each query re-derives the
        // alias matching behind both loads; the batch resolves each
        // load-carrying state once and replays the cached successors for
        // the second root, so it must spend fewer steps than the sum.
        let f = Fixture::new(
            "class Box { Item item; }
             class Pack { Box box; }
             class Item { }
             class Main {
               static void main() {
                 Pack p = new Pack();
                 Box b = new Box();
                 Item i = new Item();
                 p.box = b;
                 b.item = i;
                 Box tb = p.box;
                 Item t = tb.item;
                 Item x = t;
                 Item y = t;
               }
             }",
        );
        let e = f.engine();
        let roots = [f.local("Main.main", "x"), f.local("Main.main", "y")];
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (r_x, s_x) = e.points_to_ticketed(roots[0], &Context::empty(), &ticket);
        assert_eq!(r_x.objects.len(), 1);
        let (_, s_y) = e.points_to_ticketed(roots[1], &Context::empty(), &ticket);
        let (batch, s_batch) = e.points_to_batch(&roots, &Context::empty(), &ticket);
        assert!(batch.iter().all(|r| r.complete));
        assert!(
            s_batch.steps < s_x.steps + s_y.steps,
            "batch {} steps must undercut separate {} + {}",
            s_batch.steps,
            s_x.steps,
            s_y.steps
        );
    }

    #[test]
    fn batch_is_deterministic_and_hermetic() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C a = new C();
                 C x = C.id(a);
                 C y = C.id(C.id(a));
               }
             }",
        );
        let e = f.engine();
        // Warm the memo; the batch must ignore it.
        let _ = e.points_to(f.local("C.main", "x"), &Context::empty());
        let roots = [f.local("C.main", "x"), f.local("C.main", "y")];
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (r1, s1) = e.points_to_batch(&roots, &Context::empty(), &ticket);
        let (r2, s2) = e.points_to_batch(&roots, &Context::empty(), &ticket);
        assert_eq!(s1.steps, s2.steps, "hermetic batches repeat exactly");
        assert_eq!(s1.memo_hits, 0);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.objects, b.objects);
            assert_eq!(a.complete, b.complete);
        }
    }

    #[test]
    fn batch_exhaustion_marks_every_root_incomplete() {
        let f = Fixture::new(
            "class C {
               static C id(C v) { return v; }
               static void main() {
                 C x = C.id(C.id(C.id(new C())));
                 C y = new C();
               }
             }",
        );
        let e = f.engine();
        let roots = [f.local("C.main", "x"), f.local("C.main", "y")];
        let (batch, stats) =
            e.points_to_batch(&roots, &Context::empty(), &QueryTicket::hermetic(2));
        assert!(stats.budget_exhausted);
        assert!(
            batch.iter().all(|r| !r.complete),
            "a starved batch must not certify any root complete"
        );
    }

    #[test]
    fn batch_handles_absent_and_duplicate_roots() {
        let f = Fixture::new(
            "class C {
               C unused;
               static void main() { C x = new C(); }
             }",
        );
        let e = f.engine();
        let x = f.local("C.main", "x");
        // A node the PAG never saw: per-root empty complete result.
        let ghost = Node::Local(
            f.program.method_by_path("C.main").unwrap(),
            LocalId::from_index(7),
        );
        let ticket = QueryTicket::hermetic(DemandConfig::default().budget);
        let (batch, _) = e.points_to_batch(&[x, ghost, x], &Context::empty(), &ticket);
        assert_eq!(batch[0].objects.len(), 1);
        assert!(batch[1].objects.is_empty() && batch[1].complete);
        assert_eq!(batch[2].objects, batch[0].objects, "duplicate roots agree");
    }

    #[test]
    fn results_subset_of_andersen() {
        // Differential: every demand answer must be within Andersen's.
        let src = "
            class Node { Node next; Payload p; }
            class Payload { }
            class Main {
              static Node build(int n) {
                Node head = null;
                int i = 0;
                while (i < n) {
                  Node fresh = new Node();
                  fresh.next = head;
                  fresh.p = new Payload();
                  head = fresh;
                  i = i + 1;
                }
                return head;
              }
              static void main() {
                Node list = Main.build(10);
                Node cur = list;
                while (cur != null) {
                  Payload q = cur.p;
                  cur = cur.next;
                }
              }
            }";
        let f = Fixture::new(src);
        let e = f.engine();
        let andersen = crate::andersen::Andersen::run(&f.program, &f.pag);
        for (path, name) in [
            ("Main.main", "list"),
            ("Main.main", "cur"),
            ("Main.main", "q"),
            ("Main.build", "head"),
            ("Main.build", "fresh"),
        ] {
            let node = f.local(path, name);
            let demand = e.points_to(node, &Context::empty());
            if demand.complete {
                let exhaustive = andersen.points_to_node(&f.pag, node);
                for site in demand.sites() {
                    assert!(
                        exhaustive.contains(&site),
                        "{path}.{name}: demand found {site} missing from Andersen"
                    );
                }
            }
        }
    }
}
