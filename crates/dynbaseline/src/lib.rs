//! Dynamic leak-detection baselines.
//!
//! The paper contrasts its static approach with the dynamic detectors
//! that dominated prior work: tools that watch a *particular execution*
//! and flag suspicious objects by **staleness** (time since an object was
//! last used) or by **growing types** (types whose live-instance count
//! keeps rising). Dynamic tools can only find a leak when the test input
//! actually triggers it — the motivating limitation LeakChecker removes.
//!
//! This crate implements both heuristics over the concrete interpreter's
//! execution traces, so the benchmark harness can demonstrate the
//! comparison: the static detector flags the leak with *no* input, while
//! the dynamic baseline needs a leak-triggering number of loop iterations
//! before its signal crosses threshold.

use leakchecker_interp::{EffectLog, Execution, Heap};
use leakchecker_ir::ids::AllocSite;
use leakchecker_ir::Program;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the dynamic detector.
#[derive(Copy, Clone, Debug)]
pub struct DynConfig {
    /// An object is *stale* if it was last loaded at least this many
    /// tracked-loop iterations before the end of the run (and survived to
    /// the end).
    pub staleness_threshold: u64,
    /// A site is reported once at least this many stale instances
    /// accumulated; the growing-types heuristic also compares midpoint
    /// and endpoint live counts.
    pub growth_threshold: usize,
}

impl Default for DynConfig {
    fn default() -> Self {
        DynConfig {
            staleness_threshold: 2,
            growth_threshold: 4,
        }
    }
}

/// What the dynamic detector reports for one site.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DynFinding {
    /// The suspicious allocation site.
    pub site: AllocSite,
    /// Number of stale instances observed.
    pub stale_instances: usize,
    /// Total instances created during the run.
    pub total_instances: usize,
    /// `true` when the growing-types heuristic also fired.
    pub growing: bool,
}

/// The dynamic analysis result.
#[derive(Clone, Debug, Default)]
pub struct DynReport {
    /// Findings ordered by site.
    pub findings: Vec<DynFinding>,
}

impl DynReport {
    /// The reported sites.
    pub fn sites(&self) -> BTreeSet<AllocSite> {
        self.findings.iter().map(|f| f.site).collect()
    }
}

/// Runs the staleness + growing-types heuristics over an execution.
///
/// An instance counts as stale when it was created inside the tracked
/// loop, survives to the end of the run reachable from an *outside*
/// object (its escape is what keeps it alive), and its last load happened
/// more than [`DynConfig::staleness_threshold`] iterations before the
/// run's final iteration.
pub fn detect(program: &Program, exec: &Execution, config: DynConfig) -> DynReport {
    let heap = &exec.heap;
    let effects = &exec.effects;
    let final_iter = exec.iterations;

    let last_load = last_load_iteration(effects);
    let escaped = escaped_objects(heap);

    // Per-site tallies.
    let mut stale: BTreeMap<AllocSite, usize> = BTreeMap::new();
    let mut total: BTreeMap<AllocSite, usize> = BTreeMap::new();
    let mut live_mid: BTreeMap<AllocSite, usize> = BTreeMap::new();
    let mut live_end: BTreeMap<AllocSite, usize> = BTreeMap::new();
    let midpoint = final_iter / 2;

    for (obj, info) in heap.iter() {
        *total.entry(info.site).or_default() += 1;
        if info.iteration == 0 {
            continue;
        }
        if !escaped.contains(&obj) {
            // Unreachable from outside objects at run end: dead for leak
            // purposes (the interpreter never collects, but a dynamic
            // detector samples reachability).
            continue;
        }
        if info.iteration <= midpoint {
            *live_mid.entry(info.site).or_default() += 1;
        }
        *live_end.entry(info.site).or_default() += 1;
        let last = last_load.get(&obj).copied().unwrap_or(info.iteration);
        if final_iter.saturating_sub(last) >= config.staleness_threshold {
            *stale.entry(info.site).or_default() += 1;
        }
    }

    let mut findings = Vec::new();
    for (&site, &stale_count) in &stale {
        let end = live_end.get(&site).copied().unwrap_or(0);
        let mid = live_mid.get(&site).copied().unwrap_or(0);
        let growing = end >= config.growth_threshold && end > mid;
        if stale_count >= config.growth_threshold.max(1) {
            findings.push(DynFinding {
                site,
                stale_instances: stale_count,
                total_instances: total.get(&site).copied().unwrap_or(0),
                growing,
            });
        }
    }
    findings.sort_by_key(|f| f.site);
    let _ = program;
    DynReport { findings }
}

/// Three-way comparison of the static detector's coverage, the dynamic
/// baseline's report, and interpreter-derived ground truth for one
/// program — the quantitative form of the paper's static-vs-dynamic
/// argument, aggregated across programs by the fuzzing campaign.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreeWay {
    /// Ground-truth leaks absent from the static coverage (soundness
    /// violations).
    pub static_missed: Vec<AllocSite>,
    /// Statically covered sites the ground truth did not confirm.
    pub static_extra: Vec<AllocSite>,
    /// Ground-truth leaks the dynamic baseline failed to flag — the
    /// motivating limitation: dynamic tools need a leak-triggering run.
    pub dynamic_missed: Vec<AllocSite>,
    /// Dynamically flagged sites the ground truth did not confirm.
    pub dynamic_extra: Vec<AllocSite>,
    /// Ground-truth leaks found by both detectors.
    pub agreed: Vec<AllocSite>,
}

/// Compares static coverage and a dynamic report against the truth set.
pub fn three_way(
    static_covered: &BTreeSet<AllocSite>,
    dynamic: &DynReport,
    truth: &BTreeSet<AllocSite>,
) -> ThreeWay {
    let dyn_sites = dynamic.sites();
    let diff = |a: &BTreeSet<AllocSite>, b: &BTreeSet<AllocSite>| -> Vec<AllocSite> {
        a.difference(b).copied().collect()
    };
    ThreeWay {
        static_missed: diff(truth, static_covered),
        static_extra: diff(static_covered, truth),
        dynamic_missed: diff(truth, &dyn_sites),
        dynamic_extra: diff(&dyn_sites, truth),
        agreed: truth
            .iter()
            .filter(|s| static_covered.contains(s) && dyn_sites.contains(s))
            .copied()
            .collect(),
    }
}

/// Measures live-heap growth: objects reachable from outside objects per
/// completed iteration band. Used by the harness to *demonstrate* each
/// subject's leak as monotone heap growth.
pub fn heap_growth_curve(exec: &Execution, bands: usize) -> Vec<usize> {
    let escaped = escaped_objects(&exec.heap);
    let total_iters = exec.iterations.max(1);
    let mut curve = vec![0usize; bands.max(1)];
    for (obj, info) in exec.heap.iter() {
        if info.iteration == 0 || !escaped.contains(&obj) {
            continue;
        }
        // The object occupies the heap from its creating iteration on.
        let bands = curve.len();
        let start_band =
            (((info.iteration - 1) * bands as u64 / total_iters) as usize).min(bands - 1);
        for slot in curve.iter_mut().skip(start_band) {
            *slot += 1;
        }
    }
    curve
}

fn last_load_iteration(effects: &EffectLog) -> BTreeMap<leakchecker_interp::ObjId, u64> {
    let mut last = BTreeMap::new();
    for l in &effects.loads {
        let entry = last.entry(l.value).or_insert(0);
        *entry = (*entry).max(l.iteration);
    }
    last
}

/// Inside objects (transitively) reachable from outside-stamped objects
/// via the final heap.
fn escaped_objects(heap: &Heap) -> BTreeSet<leakchecker_interp::ObjId> {
    let mut reachable = BTreeSet::new();
    let mut queue: Vec<leakchecker_interp::ObjId> = heap
        .iter()
        .filter(|(_, o)| o.iteration == 0)
        .map(|(id, _)| id)
        .collect();
    let mut seen: BTreeSet<_> = queue.iter().copied().collect();
    while let Some(obj) = queue.pop() {
        for (_, target) in heap.out_edges(obj) {
            if seen.insert(target) {
                queue.push(target);
            }
        }
        if heap.get(obj).iteration > 0 {
            reachable.insert(obj);
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_frontend::compile;
    use leakchecker_interp::{run, Config, NonDetPolicy};

    fn execute(src: &str, iters: u64) -> (leakchecker_ir::Program, Execution) {
        let unit = compile(src).unwrap();
        let exec = run(
            &unit.program,
            Config {
                tracked_loop: Some(unit.checked_loops[0]),
                nondet: NonDetPolicy::Always(true),
                max_tracked_iterations: Some(iters),
                ..Config::default()
            },
        )
        .unwrap();
        (unit.program, exec)
    }

    const LEAKY: &str = "
        class Item { }
        class Node { Item item; Node next; }
        class Holder { Node head; }
        class Main {
          static void main() {
            Holder h = new Holder();
            @check while (nondet()) {
              Node n = new Node();
              n.item = new Item();
              n.next = h.head;
              h.head = n;
            }
          }
        }";

    #[test]
    fn staleness_flags_leak_with_enough_iterations() {
        let (p, exec) = execute(LEAKY, 50);
        let report = detect(&p, &exec, DynConfig::default());
        assert!(
            !report.findings.is_empty(),
            "long run must reveal the leak dynamically"
        );
        assert!(report.findings.iter().any(|f| f.growing));
    }

    #[test]
    fn short_run_hides_leak_from_dynamic_detector() {
        // The paper's point: without a leak-triggering input, the dynamic
        // detector reports nothing.
        let (p, exec) = execute(LEAKY, 1);
        let report = detect(&p, &exec, DynConfig::default());
        assert!(report.findings.is_empty(), "{report:?}");
    }

    #[test]
    fn healthy_program_is_quiet() {
        let (p, exec) = execute(
            "class Order { }
             class Tx { Order curr; }
             class Main {
               static void main() {
                 Tx t = new Tx();
                 @check while (nondet()) {
                   Order prev = t.curr;
                   Order o = new Order();
                   t.curr = o;
                 }
               }
             }",
            50,
        );
        // Every escaped instance except the last is overwritten (becomes
        // unreachable), and the survivor is recent: nothing crosses the
        // threshold.
        let report = detect(&p, &exec, DynConfig::default());
        assert!(report.findings.is_empty(), "{report:?}");
    }

    #[test]
    fn growth_curve_is_monotone_for_leaks() {
        let (_p, exec) = execute(LEAKY, 40);
        let curve = heap_growth_curve(&exec, 8);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(w[1] >= w[0], "leak curve must be monotone: {curve:?}");
        }
        assert!(curve[7] > curve[0]);
    }

    /// A single-site leak: each node links the previous head (so every
    /// node except the newest gets loaded exactly once, one iteration
    /// after its creation), giving precise control over staleness.
    const CHAIN: &str = "
        class Node { Node next; }
        class Holder { Node head; }
        class Main {
          static void main() {
            Holder h = new Holder();
            @check while (nondet()) {
              Node n = new Node();
              n.next = h.head;
              h.head = n;
            }
          }
        }";

    #[test]
    fn staleness_exactly_at_threshold_counts() {
        // 6 iterations: node created in iteration i is last loaded in
        // iteration i+1 (when the next node links it); the newest is
        // never loaded. Node 1 has staleness 6 - 2 = 4: with the
        // threshold at exactly 4 it is the only stale instance, one
        // notch higher it is not.
        let (p, exec) = execute(CHAIN, 6);
        let at = detect(
            &p,
            &exec,
            DynConfig {
                staleness_threshold: 4,
                growth_threshold: 1,
            },
        );
        assert_eq!(at.findings.len(), 1, "{at:?}");
        assert_eq!(at.findings[0].stale_instances, 1);
        let above = detect(
            &p,
            &exec,
            DynConfig {
                staleness_threshold: 5,
                growth_threshold: 1,
            },
        );
        assert!(above.findings.is_empty(), "{above:?}");
    }

    #[test]
    fn growth_exactly_at_threshold_fires() {
        // 10 iterations, staleness 2: nodes 1..=7 are stale (node i is
        // last loaded at i+1; 10 - 8 = 2 is the newest stale load).
        let (p, exec) = execute(CHAIN, 10);
        let at = detect(
            &p,
            &exec,
            DynConfig {
                staleness_threshold: 2,
                growth_threshold: 7,
            },
        );
        assert_eq!(at.findings.len(), 1, "{at:?}");
        assert_eq!(at.findings[0].stale_instances, 7);
        let above = detect(
            &p,
            &exec,
            DynConfig {
                staleness_threshold: 2,
                growth_threshold: 8,
            },
        );
        assert!(above.findings.is_empty(), "{above:?}");
    }

    #[test]
    fn zero_iteration_loop_reports_nothing() {
        let unit = compile(CHAIN).unwrap();
        let exec = run(
            &unit.program,
            Config {
                tracked_loop: Some(unit.checked_loops[0]),
                nondet: NonDetPolicy::Always(false),
                ..Config::default()
            },
        )
        .unwrap();
        assert_eq!(exec.iterations, 0);
        let report = detect(&unit.program, &exec, DynConfig::default());
        assert!(report.findings.is_empty(), "{report:?}");
        let curve = heap_growth_curve(&exec, 4);
        assert_eq!(curve, vec![0, 0, 0, 0]);
    }

    #[test]
    fn three_way_partitions_by_truth() {
        let s = AllocSite;
        let truth: BTreeSet<AllocSite> = [s(1), s(2), s(3)].into();
        let static_covered: BTreeSet<AllocSite> = [s(1), s(2), s(9)].into();
        let dynamic = DynReport {
            findings: vec![DynFinding {
                site: s(2),
                stale_instances: 5,
                total_instances: 5,
                growing: true,
            }],
        };
        let cmp = three_way(&static_covered, &dynamic, &truth);
        assert_eq!(cmp.static_missed, vec![s(3)]);
        assert_eq!(cmp.static_extra, vec![s(9)]);
        assert_eq!(cmp.dynamic_missed, vec![s(1), s(3)]);
        assert!(cmp.dynamic_extra.is_empty());
        assert_eq!(cmp.agreed, vec![s(2)]);
    }

    #[test]
    fn three_way_on_a_real_run() {
        // Long leaky run: dynamic and static agree; short run: only the
        // static side covers the truth.
        let (p, exec) = execute(CHAIN, 50);
        let node = p
            .allocs()
            .iter()
            .enumerate()
            .find(|(_, a)| a.describe == "new Node")
            .map(|(i, _)| AllocSite::from_index(i))
            .unwrap();
        let truth: BTreeSet<AllocSite> = [node].into();
        let report = detect(&p, &exec, DynConfig::default());
        let cmp = three_way(&truth, &report, &truth);
        assert!(cmp.static_missed.is_empty());
        assert_eq!(cmp.agreed, vec![node]);

        let (p2, exec2) = execute(CHAIN, 1);
        let report2 = detect(&p2, &exec2, DynConfig::default());
        let cmp2 = three_way(&truth, &report2, &truth);
        assert_eq!(
            cmp2.dynamic_missed,
            vec![node],
            "short run hides the leak from the dynamic detector"
        );
        assert!(cmp2.static_missed.is_empty());
    }

    #[test]
    fn stale_counts_reflect_instances() {
        let (p, exec) = execute(LEAKY, 30);
        let report = detect(&p, &exec, DynConfig::default());
        for f in &report.findings {
            assert!(f.stale_instances <= f.total_instances);
            assert!(f.stale_instances >= DynConfig::default().growth_threshold);
        }
    }
}
