//! Tokenizer for the Java-like surface language.

use crate::error::{CompileError, Phase, Pos, Result, Span};
use std::fmt;

/// The kind of a token.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword text.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (only used inside `@fp("...")`).
    Str(String),
    /// `@`-annotation name (without the `@`), e.g. `leak`, `check`.
    At(String),
    /// A punctuation / operator token, e.g. `{`, `==`, `&&`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "`{v}`"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::At(s) => write!(f, "`@{s}`"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it was lexed.
    pub span: Span,
}

/// Multi-character operators, longest first so maximal munch works.
const MULTI_PUNCT: &[&str] = &["==", "!=", "<=", ">=", "&&", "||"];
/// Single-character punctuation.
const SINGLE_PUNCT: &[&str] = &[
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "=", "<", ">", "+", "-", "*", "/", "%", "!",
];

/// Tokenizes `source` completely.
///
/// # Errors
///
/// Returns a [`CompileError`] with [`Phase::Lex`] on unterminated comments
/// or strings, malformed numbers, and unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source_len: usize,
    _marker: std::marker::PhantomData<&'s ()>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Self {
        let chars: Vec<char> = source.chars().collect();
        Lexer {
            source_len: chars.len(),
            chars,
            pos: 0,
            line: 1,
            col: 1,
            _marker: std::marker::PhantomData,
        }
    }

    fn here(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, start: Pos, message: impl Into<String>) -> CompileError {
        CompileError::new(Phase::Lex, Span::new(start, self.here()), message)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.here();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some('*'), Some('/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(self.error(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.here();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::at(start),
                });
                break;
            };
            if c.is_ascii_alphabetic() || c == '_' || c == '$' {
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    span: Span::new(start, self.here()),
                });
            } else if c.is_ascii_digit() {
                let mut value: i64 = 0;
                let mut overflow = false;
                while let Some(c) = self.peek() {
                    if let Some(d) = c.to_digit(10) {
                        let (v, o1) = value.overflowing_mul(10);
                        let (v, o2) = v.overflowing_add(d as i64);
                        overflow |= o1 || o2;
                        value = v;
                        self.bump();
                    } else {
                        break;
                    }
                }
                if overflow {
                    return Err(self.error(start, "integer literal overflows i64"));
                }
                if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    return Err(self.error(start, "identifier cannot start with a digit"));
                }
                tokens.push(Token {
                    kind: TokenKind::Int(value),
                    span: Span::new(start, self.here()),
                });
            } else if c == '"' {
                self.bump();
                let mut text = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some('\\') => match self.bump() {
                            Some('n') => text.push('\n'),
                            Some('t') => text.push('\t'),
                            Some(other) => text.push(other),
                            None => return Err(self.error(start, "unterminated string literal")),
                        },
                        Some(other) => text.push(other),
                        None => return Err(self.error(start, "unterminated string literal")),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str(text),
                    span: Span::new(start, self.here()),
                });
            } else if c == '@' {
                self.bump();
                let mut text = String::new();
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                if text.is_empty() {
                    return Err(self.error(start, "expected annotation name after `@`"));
                }
                tokens.push(Token {
                    kind: TokenKind::At(text),
                    span: Span::new(start, self.here()),
                });
            } else {
                let mut matched = None;
                for p in MULTI_PUNCT {
                    let mut chars = p.chars();
                    if Some(c) == chars.next() && self.peek2() == chars.next() {
                        matched = Some(*p);
                        break;
                    }
                }
                if let Some(p) = matched {
                    self.bump();
                    self.bump();
                    tokens.push(Token {
                        kind: TokenKind::Punct(p),
                        span: Span::new(start, self.here()),
                    });
                } else if let Some(p) = SINGLE_PUNCT.iter().find(|p| p.starts_with(c)) {
                    self.bump();
                    tokens.push(Token {
                        kind: TokenKind::Punct(p),
                        span: Span::new(start, self.here()),
                    });
                } else {
                    return Err(self.error(start, format!("unexpected character `{c}`")));
                }
            }
            if self.pos > self.source_len {
                break;
            }
        }
        Ok(tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_keywords() {
        let k = kinds("class Foo extends Bar");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("class".into()),
                TokenKind::Ident("Foo".into()),
                TokenKind::Ident("extends".into()),
                TokenKind::Ident("Bar".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_with_maximal_munch() {
        let k = kinds("a <= b == c && d");
        assert!(k.contains(&TokenKind::Punct("<=")));
        assert!(k.contains(&TokenKind::Punct("==")));
        assert!(k.contains(&TokenKind::Punct("&&")));
        let k = kinds("a < = b");
        assert!(k.contains(&TokenKind::Punct("<")));
        assert!(k.contains(&TokenKind::Punct("=")));
    }

    #[test]
    fn lexes_numbers_strings_annotations() {
        let k = kinds("x = 42; @fp(\"singleton\")");
        assert!(k.contains(&TokenKind::Int(42)));
        assert!(k.contains(&TokenKind::At("fp".into())));
        assert!(k.contains(&TokenKind::Str("singleton".into())));
    }

    #[test]
    fn skips_comments() {
        let k = kinds("a // line comment\n /* block\ncomment */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn tracks_positions() {
        let toks = tokenize("ab\n  cd").unwrap();
        assert_eq!(toks[0].span.start, Pos::new(1, 1));
        assert_eq!(toks[1].span.start, Pos::new(2, 3));
    }

    #[test]
    fn rejects_unterminated_comment() {
        let err = tokenize("/* never closed").unwrap_err();
        assert!(err.message.contains("unterminated"));
        assert_eq!(err.phase, Phase::Lex);
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(tokenize("\"oops").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = tokenize("a # b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
    }

    #[test]
    fn rejects_overflowing_int() {
        assert!(tokenize("99999999999999999999999").is_err());
    }

    #[test]
    fn string_escapes() {
        let k = kinds(r#""a\nb\"c""#);
        assert_eq!(k[0], TokenKind::Str("a\nb\"c".into()));
    }
}
