//! Source positions and frontend error types.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A half-open span of source text.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// First character of the spanned region.
    pub start: Pos,
    /// Position one past the end of the region.
    pub end: Pos,
}

impl Span {
    /// Creates a span from two positions.
    pub fn new(start: Pos, end: Pos) -> Self {
        Span { start, end }
    }

    /// A zero-width span at one position.
    pub fn at(pos: Pos) -> Self {
        Span {
            start: pos,
            end: pos,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.start)
    }
}

/// The phase in which a frontend error was detected.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Syntactic analysis.
    Parse,
    /// Name resolution and lowering to IR.
    Resolve,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::Lex => write!(f, "lexical error"),
            Phase::Parse => write!(f, "syntax error"),
            Phase::Resolve => write!(f, "resolution error"),
        }
    }
}

/// An error produced while compiling source text to IR.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompileError {
    /// Detection phase.
    pub phase: Phase,
    /// Location of the offending text.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(phase: Phase, span: Span, message: impl Into<String>) -> Self {
        CompileError {
            phase,
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Frontend result alias.
pub type Result<T> = std::result::Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CompileError::new(Phase::Parse, Span::at(Pos::new(3, 7)), "expected `;`");
        assert_eq!(e.to_string(), "syntax error at 3:7: expected `;`");
    }

    #[test]
    fn positions_order() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
    }
}
