//! Abstract syntax tree of the surface language.
//!
//! The parser produces this tree; the resolver lowers it to the
//! three-address IR of `leakchecker-ir`.

use crate::error::Span;

/// A parsed compilation unit: a list of class declarations.
#[derive(Clone, Debug, Default)]
pub struct Unit {
    /// All classes in source order.
    pub classes: Vec<ClassDecl>,
}

/// A class declaration.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name, if an `extends` clause is present.
    pub superclass: Option<String>,
    /// `library class` marks standard-library code.
    pub is_library: bool,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method and constructor declarations.
    pub methods: Vec<MethodDecl>,
    /// Source location of the `class` keyword.
    pub span: Span,
}

/// A field declaration, optionally with an initializer expression.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
    /// `static` flag.
    pub is_static: bool,
    /// Optional initializer, lowered into constructor prologues
    /// (or a static initializer for static fields).
    pub init: Option<Expr>,
    /// Source location.
    pub span: Span,
}

/// A method or constructor declaration.
#[derive(Clone, Debug)]
pub struct MethodDecl {
    /// Method name; constructors use the class name and are lowered to
    /// `<init>`.
    pub name: String,
    /// `true` when this is a constructor.
    pub is_ctor: bool,
    /// `static` flag.
    pub is_static: bool,
    /// `@region` marks the method as a checkable region: the detector
    /// wraps its body in an artificial loop (paper Section 1).
    pub is_region: bool,
    /// Return type (`void` for constructors).
    pub ret_ty: TypeName,
    /// Parameter list.
    pub params: Vec<Param>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source location of the declaration.
    pub span: Span,
}

/// A formal parameter.
#[derive(Clone, Debug)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: TypeName,
}

/// A syntactic type name (resolved to `leakchecker_ir::Type` later).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TypeName {
    /// Base name: `int`, `boolean`, `void`, or a class name.
    pub base: String,
    /// Number of `[]` suffixes.
    pub dims: usize,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `T x;` or `T x = e;`
    VarDecl {
        /// Declared type.
        ty: TypeName,
        /// Variable name.
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
        /// Location.
        span: Span,
    },
    /// `lhs = e;` where `lhs` is a local, field, array element or static
    /// field place.
    Assign {
        /// Assignment target.
        target: Expr,
        /// Right-hand side.
        value: Expr,
        /// Location.
        span: Span,
    },
    /// An expression evaluated for effect (a call).
    Expr(Expr),
    /// `if (cond) { .. } else { .. }`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_branch: Vec<Stmt>,
        /// Location.
        span: Span,
    },
    /// `while (cond) { .. }`, possibly annotated `@check`.
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// `@check` designates this loop for leak analysis.
        checked: bool,
        /// Location.
        span: Span,
    },
    /// `return;` or `return e;`
    Return(Option<Expr>, Span),
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
}

/// A ground-truth annotation attached to a `new` expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AllocAnnotation {
    /// `@leak` — the site is a genuine leak.
    Leak,
    /// `@fp("why")` — reporting this site is an expected false positive.
    FalsePositive(String),
}

/// An expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// `null`.
    Null(Span),
    /// `this`.
    This(Span),
    /// Integer literal.
    Int(i64, Span),
    /// `true` / `false`.
    Bool(bool, Span),
    /// A plain name (local variable; resolved later).
    Name(String, Span),
    /// `e.f` field access — `e` may resolve to a class name, making this a
    /// static field access.
    Field {
        /// Receiver expression.
        base: Box<Expr>,
        /// Field name.
        name: String,
        /// Location.
        span: Span,
    },
    /// `e[i]` array element access.
    Index {
        /// Array expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `e.m(args)` / `ClassName.m(args)` / `m(args)` (implicit `this`).
    Call {
        /// Receiver; `None` means implicit `this` or same-class static.
        base: Option<Box<Expr>>,
        /// Method name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Location.
        span: Span,
    },
    /// `new C(args)` with optional `@leak` / `@fp` annotation.
    New {
        /// Class name.
        class: String,
        /// Constructor arguments.
        args: Vec<Expr>,
        /// Ground-truth annotation.
        annotation: Option<AllocAnnotation>,
        /// Location.
        span: Span,
    },
    /// `new T[len]` with optional annotation.
    NewArray {
        /// Element type.
        elem: TypeName,
        /// Length expression.
        len: Box<Expr>,
        /// Ground-truth annotation.
        annotation: Option<AllocAnnotation>,
        /// Location.
        span: Span,
    },
    /// `a OP b`.
    Binary {
        /// Operator token text (`+`, `==`, `&&`, ...).
        op: &'static str,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Location.
        span: Span,
    },
    /// `!e`.
    Not(Box<Expr>, Span),
    /// `-e`.
    Neg(Box<Expr>, Span),
    /// `nondet()` — an opaque boolean the analyses treat as unknown.
    NonDet(Span),
}

impl Expr {
    /// The source location of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Null(s)
            | Expr::This(s)
            | Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Name(_, s)
            | Expr::Not(_, s)
            | Expr::Neg(_, s)
            | Expr::NonDet(s) => *s,
            Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::New { span, .. }
            | Expr::NewArray { span, .. }
            | Expr::Binary { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Pos;

    #[test]
    fn expr_span_round_trip() {
        let s = Span::at(Pos::new(2, 5));
        let e = Expr::Binary {
            op: "+",
            lhs: Box::new(Expr::Int(1, s)),
            rhs: Box::new(Expr::Int(2, s)),
            span: s,
        };
        assert_eq!(e.span(), s);
        assert_eq!(Expr::NonDet(s).span(), s);
    }
}
