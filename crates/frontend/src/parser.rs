//! Recursive-descent parser for the surface language.

use crate::ast::{
    AllocAnnotation, ClassDecl, Expr, FieldDecl, MethodDecl, Param, Stmt, TypeName, Unit,
};
use crate::error::{CompileError, Phase, Result, Span};
use crate::lexer::{tokenize, Token, TokenKind};

/// Parses a complete compilation unit.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Unit> {
    let tokens = tokenize(source)?;
    Parser { tokens, pos: 0 }.unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn error(&self, message: impl Into<String>) -> CompileError {
        CompileError::new(Phase::Parse, self.span(), message)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek_kind(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{p}`, found {}", self.peek_kind())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected `{kw}`, found {}", self.peek_kind())))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span)> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) if !is_keyword(&s) => {
                let span = self.span();
                self.bump();
                Ok((s, span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn unit(&mut self) -> Result<Unit> {
        let mut classes = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::Eof) {
            classes.push(self.class_decl()?);
        }
        Ok(Unit { classes })
    }

    fn class_decl(&mut self) -> Result<ClassDecl> {
        let span = self.span();
        let is_library = self.eat_keyword("library");
        self.expect_keyword("class")?;
        let (name, _) = self.expect_ident()?;
        let superclass = if self.eat_keyword("extends") {
            Some(self.expect_ident()?.0)
        } else {
            None
        };
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside class body"));
            }
            self.member(&name, &mut fields, &mut methods)?;
        }
        Ok(ClassDecl {
            name,
            superclass,
            is_library,
            fields,
            methods,
            span,
        })
    }

    fn member(
        &mut self,
        class_name: &str,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
    ) -> Result<()> {
        let span = self.span();
        let mut is_region = false;
        while let TokenKind::At(a) = self.peek_kind().clone() {
            if a == "region" {
                is_region = true;
                self.bump();
            } else {
                return Err(self.error(format!("annotation `@{a}` is not valid on members")));
            }
        }
        let is_static = self.eat_keyword("static");

        // Constructor: `ClassName ( ... )`.
        if !is_static
            && matches!(self.peek_kind(), TokenKind::Ident(s) if s == class_name)
            && matches!(self.peek2_kind(), TokenKind::Punct("("))
        {
            let (_, _) = self.expect_ident()?;
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                name: "<init>".to_string(),
                is_ctor: true,
                is_static: false,
                is_region,
                ret_ty: TypeName {
                    base: "void".to_string(),
                    dims: 0,
                    span,
                },
                params,
                body,
                span,
            });
            return Ok(());
        }

        let ty = self.type_name()?;
        let (name, _) = self.expect_ident()?;
        if matches!(self.peek_kind(), TokenKind::Punct("(")) {
            let params = self.params()?;
            let body = self.block()?;
            methods.push(MethodDecl {
                name,
                is_ctor: false,
                is_static,
                is_region,
                ret_ty: ty,
                params,
                body,
                span,
            });
        } else {
            if is_region {
                return Err(self.error("`@region` is only valid on methods"));
            }
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect_punct(";")?;
            fields.push(FieldDecl {
                name,
                ty,
                is_static,
                init,
                span,
            });
        }
        Ok(())
    }

    fn params(&mut self) -> Result<Vec<Param>> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                let ty = self.type_name()?;
                let (name, _) = self.expect_ident()?;
                params.push(Param { name, ty });
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(params)
    }

    fn type_name(&mut self) -> Result<TypeName> {
        let span = self.span();
        let base = match self.peek_kind().clone() {
            TokenKind::Ident(s)
                if s == "int" || s == "boolean" || s == "void" || !is_keyword(&s) =>
            {
                self.bump();
                s
            }
            other => return Err(self.error(format!("expected type name, found {other}"))),
        };
        let mut dims = 0;
        while matches!(self.peek_kind(), TokenKind::Punct("["))
            && matches!(self.peek2_kind(), TokenKind::Punct("]"))
        {
            self.bump();
            self.bump();
            dims += 1;
        }
        Ok(TypeName { base, dims, span })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek_kind(), TokenKind::Eof) {
                return Err(self.error("unexpected end of input inside block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();

        // `@check while (...)` — designated loop.
        if let TokenKind::At(a) = self.peek_kind().clone() {
            if a == "check" {
                self.bump();
                self.expect_keyword("while")?;
                return self.while_stmt(true, span);
            }
            // allocation annotations are handled inside expressions
        }

        match self.peek_kind().clone() {
            TokenKind::Ident(kw) if kw == "if" => {
                self.bump();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_branch = self.block()?;
                let else_branch = if self.eat_keyword("else") {
                    if matches!(self.peek_kind(), TokenKind::Ident(s) if s == "if") {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span,
                })
            }
            TokenKind::Ident(kw) if kw == "while" => {
                self.bump();
                self.while_stmt(false, span)
            }
            TokenKind::Ident(kw) if kw == "return" => {
                self.bump();
                let value = if self.eat_punct(";") {
                    None
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Some(e)
                };
                Ok(Stmt::Return(value, span))
            }
            TokenKind::Ident(kw) if kw == "break" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Break(span))
            }
            TokenKind::Ident(kw) if kw == "continue" => {
                self.bump();
                self.expect_punct(";")?;
                Ok(Stmt::Continue(span))
            }
            // Variable declaration: `Type name ...` — distinguish from an
            // assignment/expression by lookahead: ident ident, or
            // ident[] ident. The base type is a class name or one of the
            // primitive type keywords.
            TokenKind::Ident(s)
                if (s == "int" || s == "boolean" || !is_keyword(&s))
                    && (matches!(self.peek2_kind(), TokenKind::Ident(n) if !is_keyword(n))
                        || self.looks_like_array_decl()) =>
            {
                let ty = self.type_name()?;
                let (name, _) = self.expect_ident()?;
                let init = if self.eat_punct("=") {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect_punct(";")?;
                Ok(Stmt::VarDecl {
                    ty,
                    name,
                    init,
                    span,
                })
            }
            _ => {
                let e = self.expr()?;
                if self.eat_punct("=") {
                    let value = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::Assign {
                        target: e,
                        value,
                        span,
                    })
                } else {
                    self.expect_punct(";")?;
                    Ok(Stmt::Expr(e))
                }
            }
        }
    }

    /// True for `Ident [ ] Ident`, the start of an array-typed declaration.
    fn looks_like_array_decl(&self) -> bool {
        matches!(self.peek2_kind(), TokenKind::Punct("["))
            && matches!(
                self.tokens.get(self.pos + 2).map(|t| &t.kind),
                Some(TokenKind::Punct("]"))
            )
    }

    fn while_stmt(&mut self, checked: bool, span: Span) -> Result<Stmt> {
        self.expect_punct("(")?;
        let cond = self.expr()?;
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(Stmt::While {
            cond,
            body,
            checked,
            span,
        })
    }

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek_kind(), TokenKind::Punct("||")) {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary {
                op: "||",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while matches!(self.peek_kind(), TokenKind::Punct("&&")) {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary {
                op: "&&",
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek_kind() {
            TokenKind::Punct(p @ ("==" | "!=" | "<" | "<=" | ">" | ">=")) => *p,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
            span,
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        while let TokenKind::Punct(p @ ("+" | "-")) = self.peek_kind() {
            let op = *p;
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        while let TokenKind::Punct(p @ ("*" | "/" | "%")) = self.peek_kind() {
            let op = *p;
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        if self.eat_punct("!") {
            let e = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(e), span));
        }
        if self.eat_punct("-") {
            let e = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(e), span));
        }
        self.postfix_expr()
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            let span = self.span();
            if self.eat_punct(".") {
                let (name, _) = self.expect_ident()?;
                if matches!(self.peek_kind(), TokenKind::Punct("(")) {
                    let args = self.args()?;
                    e = Expr::Call {
                        base: Some(Box::new(e)),
                        name,
                        args,
                        span,
                    };
                } else {
                    e = Expr::Field {
                        base: Box::new(e),
                        name,
                        span,
                    };
                }
            } else if matches!(self.peek_kind(), TokenKind::Punct("["))
                && !matches!(self.peek2_kind(), TokenKind::Punct("]"))
            {
                self.bump();
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    span,
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args(&mut self) -> Result<Vec<Expr>> {
        self.expect_punct("(")?;
        let mut args = Vec::new();
        if !self.eat_punct(")") {
            loop {
                args.push(self.expr()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        Ok(args)
    }

    fn alloc_annotation(&mut self) -> Result<Option<AllocAnnotation>> {
        if let TokenKind::At(a) = self.peek_kind().clone() {
            match a.as_str() {
                "leak" => {
                    self.bump();
                    return Ok(Some(AllocAnnotation::Leak));
                }
                "fp" => {
                    self.bump();
                    self.expect_punct("(")?;
                    let reason = match self.peek_kind().clone() {
                        TokenKind::Str(s) => {
                            self.bump();
                            s
                        }
                        other => {
                            return Err(
                                self.error(format!("expected string in `@fp(..)`, found {other}"))
                            )
                        }
                    };
                    self.expect_punct(")")?;
                    return Ok(Some(AllocAnnotation::FalsePositive(reason)));
                }
                other => {
                    return Err(self.error(format!(
                        "annotation `@{other}` is not valid in expression position"
                    )))
                }
            }
        }
        Ok(None)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        let span = self.span();
        let annotation = self.alloc_annotation()?;
        if let Some(annotation) = annotation {
            // Annotation must be followed by `new`.
            self.expect_keyword("new")?;
            return self.new_expr(Some(annotation), span);
        }
        match self.peek_kind().clone() {
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, span))
            }
            TokenKind::Ident(s) => match s.as_str() {
                "null" => {
                    self.bump();
                    Ok(Expr::Null(span))
                }
                "this" => {
                    self.bump();
                    Ok(Expr::This(span))
                }
                "true" => {
                    self.bump();
                    Ok(Expr::Bool(true, span))
                }
                "false" => {
                    self.bump();
                    Ok(Expr::Bool(false, span))
                }
                "new" => {
                    self.bump();
                    self.new_expr(None, span)
                }
                "nondet" => {
                    self.bump();
                    self.expect_punct("(")?;
                    self.expect_punct(")")?;
                    Ok(Expr::NonDet(span))
                }
                _ if is_keyword(&s) => {
                    Err(self.error(format!("unexpected keyword `{s}` in expression")))
                }
                _ => {
                    self.bump();
                    if matches!(self.peek_kind(), TokenKind::Punct("(")) {
                        let args = self.args()?;
                        Ok(Expr::Call {
                            base: None,
                            name: s,
                            args,
                            span,
                        })
                    } else {
                        Ok(Expr::Name(s, span))
                    }
                }
            },
            other => Err(self.error(format!("unexpected {other} in expression"))),
        }
    }

    fn new_expr(&mut self, annotation: Option<AllocAnnotation>, span: Span) -> Result<Expr> {
        let ty = self.type_name()?;
        if matches!(self.peek_kind(), TokenKind::Punct("[")) {
            self.bump();
            let len = self.expr()?;
            self.expect_punct("]")?;
            Ok(Expr::NewArray {
                elem: ty,
                len: Box::new(len),
                annotation,
                span,
            })
        } else if ty.dims > 0 {
            Err(self.error("array allocation requires a length: `new T[n]`"))
        } else {
            let args = self.args()?;
            Ok(Expr::New {
                class: ty.base,
                args,
                annotation,
                span,
            })
        }
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "class"
            | "extends"
            | "library"
            | "static"
            | "if"
            | "else"
            | "while"
            | "return"
            | "break"
            | "continue"
            | "new"
            | "null"
            | "this"
            | "true"
            | "false"
            | "int"
            | "boolean"
            | "void"
            | "nondet"
            | "super"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_fields_and_methods() {
        let unit = parse(
            "class Order { int id; }
             class Transaction {
               Order curr;
               static int count;
               void process(Order p) { this.curr = p; }
             }",
        )
        .unwrap();
        assert_eq!(unit.classes.len(), 2);
        let tx = &unit.classes[1];
        assert_eq!(tx.fields.len(), 2);
        assert!(tx.fields[1].is_static);
        assert_eq!(tx.methods.len(), 1);
        assert_eq!(tx.methods[0].params.len(), 1);
    }

    #[test]
    fn parses_constructor() {
        let unit = parse("class C { int x; C(int v) { this.x = v; } }").unwrap();
        let m = &unit.classes[0].methods[0];
        assert!(m.is_ctor);
        assert_eq!(m.name, "<init>");
    }

    #[test]
    fn parses_checked_loop_and_annotations() {
        let unit = parse(
            "class Main {
               static void main() {
                 int i;
                 i = 0;
                 @check while (i < 10) {
                   Main m = @leak new Main();
                   i = i + 1;
                 }
               }
             }",
        )
        .unwrap();
        let body = &unit.classes[0].methods[0].body;
        let Stmt::While { checked, body, .. } = &body[2] else {
            panic!("expected while");
        };
        assert!(checked);
        let Stmt::VarDecl { init: Some(e), .. } = &body[0] else {
            panic!("expected var decl");
        };
        let Expr::New { annotation, .. } = e else {
            panic!("expected new");
        };
        assert_eq!(*annotation, Some(AllocAnnotation::Leak));
    }

    #[test]
    fn parses_fp_annotation() {
        let unit =
            parse("class C { static void m() { C x = @fp(\"singleton\") new C(); } }").unwrap();
        let Stmt::VarDecl { init: Some(e), .. } = &unit.classes[0].methods[0].body[0] else {
            panic!()
        };
        let Expr::New { annotation, .. } = e else {
            panic!()
        };
        assert_eq!(
            *annotation,
            Some(AllocAnnotation::FalsePositive("singleton".into()))
        );
    }

    #[test]
    fn parses_arrays() {
        let unit = parse(
            "class C {
               C[] items;
               void m(int n) {
                 C[] a = new C[n];
                 a[0] = new C();
                 C x = a[n - 1];
                 this.items = a;
               }
             }",
        )
        .unwrap();
        let m = &unit.classes[0].methods[0];
        assert_eq!(m.body.len(), 4);
        let Stmt::Assign { target, .. } = &m.body[1] else {
            panic!()
        };
        assert!(matches!(target, Expr::Index { .. }));
    }

    #[test]
    fn parses_operator_precedence() {
        let unit = parse("class C { static void m() { int x = 1 + 2 * 3; } }").unwrap();
        let Stmt::VarDecl {
            init: Some(Expr::Binary { op, rhs, .. }),
            ..
        } = &unit.classes[0].methods[0].body[0]
        else {
            panic!()
        };
        assert_eq!(*op, "+");
        assert!(matches!(**rhs, Expr::Binary { op: "*", .. }));
    }

    #[test]
    fn parses_if_else_chain_and_calls() {
        let unit = parse(
            "class C {
               int f() { return 1; }
               void m(C other) {
                 if (nondet()) { other.f(); }
                 else if (this.f() == 1) { f(); }
                 else { }
               }
             }",
        )
        .unwrap();
        let m = &unit.classes[0].methods[1];
        let Stmt::If { else_branch, .. } = &m.body[0] else {
            panic!()
        };
        assert!(matches!(else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_region_annotation() {
        let unit = parse("class P { @region void run() { } }").unwrap();
        assert!(unit.classes[0].methods[0].is_region);
    }

    #[test]
    fn parses_library_class() {
        let unit = parse("library class HashMap { }").unwrap();
        assert!(unit.classes[0].is_library);
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("class C { void m() { int x = 1 } }").unwrap_err();
        assert!(err.message.contains("`;`"), "{err}");
    }

    #[test]
    fn rejects_bad_annotation_position() {
        assert!(parse("class C { void m() { @check int x; } }").is_err());
    }

    #[test]
    fn rejects_unclosed_class() {
        assert!(parse("class C { void m() { }").is_err());
    }

    #[test]
    fn field_initializers_parse() {
        let unit = parse("class C { C next = null; int n = 3; }").unwrap();
        assert!(unit.classes[0].fields[0].init.is_some());
        assert!(unit.classes[0].fields[1].init.is_some());
    }

    #[test]
    fn parses_logical_operators() {
        let unit = parse("class C { static void m(int a) { if (a < 1 && a > -5 || a == 3) { } } }")
            .unwrap();
        let Stmt::If { cond, .. } = &unit.classes[0].methods[0].body[0] else {
            panic!()
        };
        assert!(matches!(cond, Expr::Binary { op: "||", .. }));
    }
}
