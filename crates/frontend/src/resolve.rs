//! Name resolution and lowering from the surface AST to the IR.
//!
//! Lowering runs in two passes. The first pass declares every class, field
//! and method signature so that bodies can reference entities in any order.
//! The second pass lowers each method body to three-address statements,
//! materializing compound expressions into compiler temporaries.

use crate::ast::{AllocAnnotation, ClassDecl, Expr, Stmt as AStmt, TypeName, Unit};
use crate::error::{CompileError, Phase, Result, Span};
use leakchecker_ir::builder::{MethodBuilder, ProgramBuilder};
use leakchecker_ir::ids::{ClassId, LocalId, LoopId, MethodId};
use leakchecker_ir::stmt::{BinOp, Cond, Operand, SiteLabel};
use leakchecker_ir::types::Type;
use leakchecker_ir::Program;
use std::collections::HashMap;

/// The result of compiling a unit: the IR program plus the analysis targets
/// designated by source annotations.
#[derive(Clone, Debug)]
pub struct CompiledUnit {
    /// The lowered program.
    pub program: Program,
    /// Loops annotated `@check`, in source order.
    pub checked_loops: Vec<LoopId>,
    /// Methods annotated `@region` (checkable regions; the detector wraps
    /// them in artificial loops).
    pub region_methods: Vec<MethodId>,
}

/// Lowers a parsed unit to IR.
///
/// # Errors
///
/// Returns the first resolution error: unknown names, type mismatches,
/// arity errors, duplicate declarations, inheritance cycles.
pub fn lower(unit: &Unit) -> Result<CompiledUnit> {
    let mut resolver = Resolver::default();
    resolver.declare(unit)?;
    resolver.lower_bodies(unit)
}

fn err(span: Span, message: impl Into<String>) -> CompileError {
    CompileError::new(Phase::Resolve, span, message)
}

/// Method signature recorded during the declaration pass.
#[derive(Clone, Debug)]
struct Sig {
    id: MethodId,
    is_static: bool,
    params: Vec<Type>,
    ret: Type,
}

#[derive(Default)]
struct Resolver {
    pb: ProgramBuilder,
    class_ids: HashMap<String, ClassId>,
    /// `(class, method-name) -> signature` for directly declared methods.
    sigs: HashMap<(ClassId, String), Sig>,
    checked_loops: Vec<LoopId>,
    region_methods: Vec<MethodId>,
    entry: Option<MethodId>,
}

impl Resolver {
    // ---------- pass 1: declarations ----------

    fn declare(&mut self, unit: &Unit) -> Result<()> {
        // The implicit root class is always in scope, with a synthesized
        // no-argument constructor so `new Object()` works.
        let object = self.pb.program().object_class();
        self.class_ids.insert("Object".to_string(), object);
        let mb = self.pb.method(object, "<init>", Type::Void, false);
        let object_init = mb.id();
        mb.finish();
        self.sigs.insert(
            (object, "<init>".to_string()),
            Sig {
                id: object_init,
                is_static: false,
                params: Vec::new(),
                ret: Type::Void,
            },
        );
        // Classes first (so `extends` can be forward).
        for class in &unit.classes {
            if self.class_ids.contains_key(&class.name) || class.name == "Object" {
                return Err(err(class.span, format!("duplicate class `{}`", class.name)));
            }
            let id = if class.is_library {
                self.pb.add_library_class(&class.name, None)
            } else {
                self.pb.add_class(&class.name, None)
            };
            self.class_ids.insert(class.name.clone(), id);
        }
        // Superclasses.
        for class in &unit.classes {
            if let Some(sup_name) = &class.superclass {
                let sup = *self
                    .class_ids
                    .get(sup_name)
                    .ok_or_else(|| err(class.span, format!("unknown superclass `{sup_name}`")))?;
                let id = self.class_ids[&class.name];
                // Rebuild the class entry with the right superclass: the
                // builder fixed Object; patch through a fresh declaration
                // is not possible, so we check for cycles and patch below.
                self.set_superclass(id, sup, class.span)?;
            }
        }
        // Fields and method signatures.
        for class in &unit.classes {
            let cid = self.class_ids[&class.name];
            for field in &class.fields {
                if self.pb.program().field_on(cid, &field.name).is_some() {
                    return Err(err(
                        field.span,
                        format!("duplicate field `{}.{}`", class.name, field.name),
                    ));
                }
                let ty = self.resolve_type(&field.ty)?;
                if ty == Type::Void {
                    return Err(err(field.span, "fields cannot have type `void`"));
                }
                if field.is_static && field.init.is_some() {
                    return Err(err(
                        field.span,
                        "static fields cannot have initializers; assign in code instead",
                    ));
                }
                self.pb.add_field(cid, &field.name, ty, field.is_static);
            }
            let mut has_ctor = false;
            for method in &class.methods {
                if method.is_ctor {
                    if has_ctor {
                        return Err(err(
                            method.span,
                            format!("class `{}` declares multiple constructors", class.name),
                        ));
                    }
                    has_ctor = true;
                }
                if self.sigs.contains_key(&(cid, method.name.clone())) {
                    return Err(err(
                        method.span,
                        format!("duplicate method `{}.{}`", class.name, method.name),
                    ));
                }
                let ret = self.resolve_type(&method.ret_ty)?;
                let mut params = Vec::new();
                let mut param_decls: Vec<(&str, Type)> = Vec::new();
                for p in &method.params {
                    let ty = self.resolve_type(&p.ty)?;
                    if ty == Type::Void {
                        return Err(err(method.span, "parameters cannot have type `void`"));
                    }
                    params.push(ty.clone());
                    param_decls.push((&p.name, ty));
                }
                let mb = self.pb.method_with_params(
                    cid,
                    &method.name,
                    ret.clone(),
                    method.is_static,
                    &param_decls,
                );
                let id = mb.id();
                mb.finish(); // body filled in pass 2
                if method.is_region {
                    self.region_methods.push(id);
                }
                if method.name == "main" && method.is_static && params.is_empty() {
                    if self.entry.is_some() {
                        return Err(err(method.span, "multiple `static main()` entry points"));
                    }
                    self.entry = Some(id);
                }
                self.sigs.insert(
                    (cid, method.name.clone()),
                    Sig {
                        id,
                        is_static: method.is_static,
                        params,
                        ret,
                    },
                );
            }
            // Synthesize a default constructor when none is declared, so
            // `new C()` always works and field initializers have a home.
            if !has_ctor {
                let mb = self.pb.method(cid, "<init>", Type::Void, false);
                let id = mb.id();
                mb.finish();
                self.sigs.insert(
                    (cid, "<init>".to_string()),
                    Sig {
                        id,
                        is_static: false,
                        params: Vec::new(),
                        ret: Type::Void,
                    },
                );
            }
        }
        Ok(())
    }

    /// Patches the superclass of `class` (the builder defaulted to Object)
    /// and rejects inheritance cycles.
    fn set_superclass(&mut self, class: ClassId, sup: ClassId, span: Span) -> Result<()> {
        // Cycle check: walk up from `sup`; if we reach `class`, reject.
        let mut cur = Some(sup);
        while let Some(c) = cur {
            if c == class {
                return Err(err(span, "inheritance cycle"));
            }
            cur = self.pb.program().class(c).superclass;
        }
        self.pb.patch_superclass(class, sup);
        Ok(())
    }

    fn resolve_type(&self, name: &TypeName) -> Result<Type> {
        let base = match name.base.as_str() {
            "int" => Type::Int,
            "boolean" => Type::Bool,
            "void" => Type::Void,
            other => Type::Ref(
                *self
                    .class_ids
                    .get(other)
                    .ok_or_else(|| err(name.span, format!("unknown type `{other}`")))?,
            ),
        };
        if name.dims > 0 && base == Type::Void {
            return Err(err(name.span, "cannot form an array of `void`"));
        }
        let mut ty = base;
        for _ in 0..name.dims {
            ty = ty.into_array();
        }
        Ok(ty)
    }

    // ---------- pass 2: bodies ----------

    fn lower_bodies(mut self, unit: &Unit) -> Result<CompiledUnit> {
        for class in &unit.classes {
            let cid = self.class_ids[&class.name];
            let mut declared_ctor = false;
            for method in &class.methods {
                let sig = self.sigs[&(cid, method.name.clone())].clone();
                declared_ctor |= method.is_ctor;
                let mut ctx = BodyCtx {
                    class_ids: &self.class_ids,
                    sigs: &self.sigs,
                    checked_loops: &mut self.checked_loops,
                    class: cid,
                    ret: sig.ret.clone(),
                    mb: self.pb.resume_method(sig.id),
                    scopes: vec![HashMap::new()],
                };
                // Bind parameters into the outer scope.
                for (i, p) in method.params.iter().enumerate() {
                    let local = ctx.mb.param(i);
                    ctx.scopes[0].insert(p.name.clone(), local);
                }
                if method.is_ctor {
                    ctx.emit_ctor_prologue(class)?;
                }
                ctx.lower_stmts(&method.body)?;
                ctx.mb.finish();
            }
            if !declared_ctor {
                // Fill the synthesized default constructor.
                let sig = self.sigs[&(cid, "<init>".to_string())].clone();
                let mut ctx = BodyCtx {
                    class_ids: &self.class_ids,
                    sigs: &self.sigs,
                    checked_loops: &mut self.checked_loops,
                    class: cid,
                    ret: Type::Void,
                    mb: self.pb.resume_method(sig.id),
                    scopes: vec![HashMap::new()],
                };
                ctx.emit_ctor_prologue(class)?;
                ctx.mb.finish();
            }
        }
        let mut program = self.pb.finish();
        if let Some(entry) = self.entry {
            program.set_entry(entry);
        }
        Ok(CompiledUnit {
            program,
            checked_loops: self.checked_loops,
            region_methods: self.region_methods,
        })
    }
}

struct BodyCtx<'r> {
    class_ids: &'r HashMap<String, ClassId>,
    sigs: &'r HashMap<(ClassId, String), Sig>,
    checked_loops: &'r mut Vec<LoopId>,
    class: ClassId,
    ret: Type,
    mb: MethodBuilder<'r>,
    scopes: Vec<HashMap<String, LocalId>>,
}

impl BodyCtx<'_> {
    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes
            .iter()
            .rev()
            .find_map(|scope| scope.get(name).copied())
    }

    fn local_type(&self, local: LocalId) -> Type {
        self.mb.program().method(self.mb.id()).locals[local.index()]
            .ty
            .clone()
    }

    /// Finds the signature of `name` on `class` or a superclass.
    fn find_sig(&self, class: ClassId, name: &str) -> Option<Sig> {
        let program = self.mb.program();
        program
            .ancestry(class)
            .find_map(|c| self.sigs.get(&(c, name.to_string())).cloned())
    }

    fn emit_ctor_prologue(&mut self, class: &ClassDecl) -> Result<()> {
        // Implicit super() when the superclass has a no-argument ctor.
        let program = self.mb.program();
        let class_id = self.class;
        let sup = program.class(class_id).superclass;
        if let Some(sup) = sup {
            if sup != program.object_class() {
                if let Some(sig) = self.sigs.get(&(sup, "<init>".to_string())) {
                    if sig.params.is_empty() {
                        let target = sig.id;
                        let this = self.mb.this();
                        self.mb.call_special(None, this, target, &[]);
                    }
                }
            }
        }
        // Instance field initializers, in declaration order.
        for field in &class.fields {
            if field.is_static {
                continue;
            }
            if let Some(init) = &field.init {
                let fid = self
                    .mb
                    .program()
                    .field_on(class_id, &field.name)
                    .expect("field declared in pass 1");
                let field_ty = self.mb.program().field(fid).ty.clone();
                let value = self.lower_value_typed(init, &field_ty)?;
                let this = self.mb.this();
                self.mb.store(this, fid, value);
            }
        }
        Ok(())
    }

    fn lower_stmts(&mut self, stmts: &[AStmt]) -> Result<()> {
        self.scopes.push(HashMap::new());
        for stmt in stmts {
            self.lower_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &AStmt) -> Result<()> {
        match stmt {
            AStmt::VarDecl {
                ty,
                name,
                init,
                span,
            } => {
                let ty = self.resolve_type(ty)?;
                if ty == Type::Void {
                    return Err(err(*span, "variables cannot have type `void`"));
                }
                if self
                    .scopes
                    .last()
                    .is_some_and(|scope| scope.contains_key(name))
                {
                    return Err(err(*span, format!("duplicate variable `{name}`")));
                }
                let local = self.mb.local(name, ty.clone());
                self.scopes
                    .last_mut()
                    .expect("scope stack is never empty")
                    .insert(name.clone(), local);
                match init {
                    Some(e) => {
                        let vty = self.lower_into(local, e)?;
                        self.check_assignable(&vty, &ty, e.span())?;
                    }
                    None => {
                        // Default-initialize so the interpreter never sees
                        // an undefined local.
                        if ty.is_reference() {
                            self.mb.assign_null(local);
                        } else {
                            self.mb.const_int(local, 0);
                        }
                    }
                }
                Ok(())
            }
            AStmt::Assign {
                target,
                value,
                span,
            } => self.lower_assign(target, value, *span),
            AStmt::Expr(e) => {
                match e {
                    Expr::Call { .. } | Expr::New { .. } | Expr::NewArray { .. } => {
                        let _ = self.lower_to_local(e)?;
                    }
                    other => {
                        return Err(err(
                            other.span(),
                            "only calls and allocations can be used as statements",
                        ))
                    }
                }
                Ok(())
            }
            AStmt::If {
                cond,
                then_branch,
                else_branch,
                ..
            } => {
                let c = self.lower_cond(cond)?;
                // Build branches with fresh scopes via the builder closures.
                // The closure API needs `self` split; emulate by lowering
                // into explicit frames.
                self.begin_frame();
                self.lower_stmts(then_branch)?;
                let then_stmts = self.end_frame();
                self.begin_frame();
                self.lower_stmts(else_branch)?;
                let else_stmts = self.end_frame();
                self.mb.push_if(c, then_stmts, else_stmts);
                Ok(())
            }
            AStmt::While {
                cond,
                body,
                checked,
                ..
            } => {
                // Conditions that read only named locals / constants can be
                // used directly: each iteration re-reads the locals. Any
                // other condition is lowered to a boolean flag that is
                // computed before the loop and recomputed at the end of
                // every iteration.
                let (c, flag) = match self.try_direct_cond(cond)? {
                    Some(direct) => (direct, None),
                    None => {
                        let flag = self.mb.temp(Type::Bool);
                        self.lower_bool_into(flag, cond)?;
                        (Cond::Local(flag), Some(flag))
                    }
                };
                self.begin_frame();
                self.lower_stmts(body)?;
                if let Some(flag) = flag {
                    self.lower_bool_into(flag, cond)?;
                }
                let body_stmts = self.end_frame();
                let id = self.mb.push_while(c, body_stmts);
                if *checked {
                    self.checked_loops.push(id);
                }
                Ok(())
            }
            AStmt::Return(value, span) => {
                match (value, self.ret.clone()) {
                    (None, Type::Void) => self.mb.ret(None),
                    (Some(_), Type::Void) => {
                        return Err(err(*span, "void method cannot return a value"))
                    }
                    (None, _) => return Err(err(*span, "missing return value")),
                    (Some(e), ret_ty) => {
                        let local = self.lower_value_typed(e, &ret_ty)?;
                        self.mb.ret(Some(local));
                    }
                }
                Ok(())
            }
            AStmt::Break(_) => {
                self.mb.brk();
                Ok(())
            }
            AStmt::Continue(_) => {
                self.mb.cont();
                Ok(())
            }
        }
    }

    /// Tries to express `cond` as a [`Cond`] that reads only named locals
    /// and constants, so it can be re-evaluated by the loop header without
    /// auxiliary statements. Returns `None` when the condition needs
    /// lowering to a flag.
    fn try_direct_cond(&mut self, cond: &Expr) -> Result<Option<Cond>> {
        let named = |this: &Self, e: &Expr| -> Option<LocalId> {
            if let Expr::Name(n, _) = e {
                this.lookup_local(n)
            } else {
                None
            }
        };
        match cond {
            Expr::NonDet(_) => Ok(Some(Cond::NonDet)),
            Expr::Name(_, _) => {
                if let Some(l) = named(self, cond) {
                    if self.local_type(l) == Type::Bool {
                        return Ok(Some(Cond::Local(l)));
                    }
                }
                Ok(None)
            }
            Expr::Not(inner, _) => {
                if let Some(l) = named(self, inner) {
                    if self.local_type(l) == Type::Bool {
                        return Ok(Some(Cond::NotLocal(l)));
                    }
                }
                Ok(None)
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                // `x == null` / `x != null` on a named local.
                if matches!(*op, "==" | "!=") {
                    let (null_side, other) = match (&**lhs, &**rhs) {
                        (Expr::Null(_), o) => (true, o),
                        (o, Expr::Null(_)) => (true, o),
                        _ => (false, &**lhs),
                    };
                    if null_side {
                        if let Some(l) = named(self, other) {
                            if self.local_type(l).is_reference() {
                                return Ok(Some(if *op == "==" {
                                    Cond::IsNull(l)
                                } else {
                                    Cond::NotNull(l)
                                }));
                            }
                        }
                        return Ok(None);
                    }
                }
                let as_operand = |this: &Self, e: &Expr| -> Option<(Operand, Type)> {
                    match e {
                        Expr::Int(v, _) => Some((Operand::Const(*v), Type::Int)),
                        Expr::Bool(b, _) => Some((Operand::Const(i64::from(*b)), Type::Bool)),
                        Expr::Name(_, _) => {
                            let l = named(this, e)?;
                            Some((Operand::Local(l), this.local_type(l)))
                        }
                        _ => None,
                    }
                };
                let bop = binop_of(op);
                if !(bop.is_comparison()) {
                    return Ok(None);
                }
                let (Some((l, lt)), Some((r, rt))) = (as_operand(self, lhs), as_operand(self, rhs))
                else {
                    return Ok(None);
                };
                let ok = match bop {
                    BinOp::Eq | BinOp::Ne => lt == rt && !lt.is_reference(),
                    _ => lt == Type::Int && rt == Type::Int,
                };
                if ok {
                    Ok(Some(Cond::Cmp {
                        op: bop,
                        lhs: l,
                        rhs: r,
                    }))
                } else {
                    Ok(None)
                }
            }
            _ => Ok(None),
        }
    }

    /// Lowers an arbitrary boolean expression into `flag`, handling
    /// reference-vs-null comparisons (which have no expression form in the
    /// IR) via a small `if`.
    fn lower_bool_into(&mut self, flag: LocalId, e: &Expr) -> Result<()> {
        if let Expr::Binary {
            op: op @ ("==" | "!="),
            lhs,
            rhs,
            ..
        } = e
        {
            let null_test = match (&**lhs, &**rhs) {
                (Expr::Null(_), other) | (other, Expr::Null(_)) => Some(other.clone()),
                _ => None,
            };
            if let Some(other) = null_test {
                let (local, ty) = self.lower_to_local(&other)?;
                if !ty.is_reference() {
                    return Err(err(other.span(), "`null` compared with a non-reference"));
                }
                let cond = if *op == "==" {
                    Cond::IsNull(local)
                } else {
                    Cond::NotNull(local)
                };
                self.begin_frame();
                self.mb.const_int(flag, 1);
                let then_stmts = self.end_frame();
                self.begin_frame();
                self.mb.const_int(flag, 0);
                let else_stmts = self.end_frame();
                self.mb.push_if(cond, then_stmts, else_stmts);
                return Ok(());
            }
        }
        let ty = self.lower_into(flag, e)?;
        if ty != Type::Bool {
            return Err(err(e.span(), "condition must be `boolean`"));
        }
        Ok(())
    }

    fn begin_frame(&mut self) {
        self.mb.begin_frame();
    }

    fn end_frame(&mut self) -> Vec<leakchecker_ir::stmt::Stmt> {
        self.mb.end_frame()
    }

    fn resolve_type(&self, name: &TypeName) -> Result<Type> {
        let base = match name.base.as_str() {
            "int" => Type::Int,
            "boolean" => Type::Bool,
            "void" => Type::Void,
            other => Type::Ref(
                *self
                    .class_ids
                    .get(other)
                    .ok_or_else(|| err(name.span, format!("unknown type `{other}`")))?,
            ),
        };
        let mut ty = base;
        for _ in 0..name.dims {
            ty = ty.into_array();
        }
        Ok(ty)
    }

    fn check_assignable(&self, from: &Type, to: &Type, span: Span) -> Result<()> {
        if self.assignable(from, to) {
            Ok(())
        } else {
            Err(err(
                span,
                format!("type mismatch: cannot assign {from:?} to {to:?}"),
            ))
        }
    }

    fn assignable(&self, from: &Type, to: &Type) -> bool {
        match (from, to) {
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) => true,
            // `null` is lowered with the target's own type, so a Ref-to-Ref
            // check covers it.
            (Type::Ref(a), Type::Ref(b)) => self.mb.program().is_subclass(*a, *b),
            // Arrays are covariant in element reference types (like Java).
            (Type::Array(a), Type::Array(b)) => a == b || self.assignable(a, b),
            // Any array is an Object.
            (Type::Array(_), Type::Ref(c)) => *c == self.mb.program().object_class(),
            _ => false,
        }
    }

    // ---------- expressions ----------

    /// Lowers `e` and stores the value into an existing local `dst`.
    /// Returns the value's type.
    fn lower_into(&mut self, dst: LocalId, e: &Expr) -> Result<Type> {
        match e {
            Expr::Null(_) => {
                self.mb.assign_null(dst);
                Ok(self.local_type(dst))
            }
            _ => {
                let (src, ty) = self.lower_to_local(e)?;
                if src != dst {
                    self.mb.assign(dst, src);
                }
                Ok(ty)
            }
        }
    }

    /// Lowers `e` to an operand, short-cutting integer constants.
    fn lower_to_operand(&mut self, e: &Expr) -> Result<(Operand, Type)> {
        match e {
            Expr::Int(v, _) => Ok((Operand::Const(*v), Type::Int)),
            Expr::Bool(b, _) => Ok((Operand::Const(i64::from(*b)), Type::Bool)),
            Expr::Neg(inner, _) => {
                if let Expr::Int(v, _) = **inner {
                    return Ok((Operand::Const(-v), Type::Int));
                }
                let (local, ty) = self.lower_to_local(e)?;
                Ok((Operand::Local(local), ty))
            }
            _ => {
                let (local, ty) = self.lower_to_local(e)?;
                Ok((Operand::Local(local), ty))
            }
        }
    }

    /// Lowers `e` into a (possibly fresh) local, returning it and its type.
    fn lower_to_local(&mut self, e: &Expr) -> Result<(LocalId, Type)> {
        match e {
            Expr::Null(span) => Err(err(
                *span,
                "`null` needs a typed context (assign it to a variable or field)",
            )),
            Expr::This(span) => {
                if self.mb.program().method(self.mb.id()).is_static {
                    return Err(err(*span, "`this` in a static method"));
                }
                let this = self.mb.this();
                Ok((this, Type::Ref(self.class)))
            }
            Expr::Int(v, _) => {
                let t = self.mb.temp(Type::Int);
                self.mb.const_int(t, *v);
                Ok((t, Type::Int))
            }
            Expr::Bool(b, _) => {
                let t = self.mb.temp(Type::Bool);
                self.mb.const_int(t, i64::from(*b));
                Ok((t, Type::Bool))
            }
            Expr::NonDet(_) => {
                let t = self.mb.temp(Type::Bool);
                self.mb.nondet_bool(t);
                Ok((t, Type::Bool))
            }
            Expr::Name(name, span) => {
                if let Some(local) = self.lookup_local(name) {
                    return Ok((local, self.local_type(local)));
                }
                // Unqualified field access on `this` / the current class.
                if let Some(fid) = self.mb.program().resolve_field(self.class, name) {
                    let field = self.mb.program().field(fid);
                    let fty = field.ty.clone();
                    let is_static = field.is_static;
                    let t = self.mb.temp(fty.clone());
                    if is_static {
                        self.mb.static_load(t, fid);
                    } else {
                        if self.mb.program().method(self.mb.id()).is_static {
                            return Err(err(
                                *span,
                                format!("instance field `{name}` in a static method"),
                            ));
                        }
                        let this = self.mb.this();
                        self.mb.load(t, this, fid);
                    }
                    return Ok((t, fty));
                }
                Err(err(*span, format!("unknown variable `{name}`")))
            }
            Expr::Field { base, name, span } => {
                // Static field: `ClassName.f`.
                if let Some(cid) = self.class_name_of(base) {
                    let fid = self
                        .mb
                        .program()
                        .resolve_field(cid, name)
                        .ok_or_else(|| err(*span, format!("unknown static field `{name}`")))?;
                    if !self.mb.program().field(fid).is_static {
                        return Err(err(
                            *span,
                            format!("`{name}` is an instance field, not static"),
                        ));
                    }
                    let fty = self.mb.program().field(fid).ty.clone();
                    let t = self.mb.temp(fty.clone());
                    self.mb.static_load(t, fid);
                    return Ok((t, fty));
                }
                let (base_local, base_ty) = self.lower_to_local(base)?;
                match base_ty {
                    Type::Ref(cid) => {
                        let fid = self.mb.program().resolve_field(cid, name).ok_or_else(|| {
                            err(
                                *span,
                                format!(
                                    "no field `{name}` on `{}`",
                                    self.mb.program().class(cid).name
                                ),
                            )
                        })?;
                        if self.mb.program().field(fid).is_static {
                            return Err(err(
                                *span,
                                format!("`{name}` is static; access it via the class name"),
                            ));
                        }
                        let fty = self.mb.program().field(fid).ty.clone();
                        let t = self.mb.temp(fty.clone());
                        self.mb.load(t, base_local, fid);
                        Ok((t, fty))
                    }
                    other => Err(err(*span, format!("field access on non-object {other:?}"))),
                }
            }
            Expr::Index { base, index, span } => {
                let (base_local, base_ty) = self.lower_to_local(base)?;
                let elem_ty = base_ty
                    .element()
                    .ok_or_else(|| err(*span, "indexing a non-array"))?
                    .clone();
                let (idx, ity) = self.lower_to_operand(index)?;
                if ity != Type::Int {
                    return Err(err(index.span(), "array index must be `int`"));
                }
                let t = self.mb.temp(elem_ty.clone());
                self.mb.array_load(t, base_local, idx);
                Ok((t, elem_ty))
            }
            Expr::Call {
                base,
                name,
                args,
                span,
            } => self.lower_call(base.as_deref(), name, args, *span),
            Expr::New {
                class,
                args,
                annotation,
                span,
            } => {
                let cid = *self
                    .class_ids
                    .get(class)
                    .ok_or_else(|| err(*span, format!("unknown class `{class}`")))?;
                let sig = self
                    .find_sig(cid, "<init>")
                    .ok_or_else(|| err(*span, format!("class `{class}` has no constructor")))?;
                if sig.params.len() != args.len() {
                    return Err(err(
                        *span,
                        format!(
                            "constructor of `{class}` takes {} argument(s), {} given",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                let mut arg_locals = Vec::new();
                for (a, pty) in args.iter().zip(&sig.params) {
                    let local = self.lower_arg(a, pty)?;
                    arg_locals.push(local);
                }
                let t = self.mb.temp(Type::Ref(cid));
                self.apply_annotation(annotation);
                self.mb.new_object(t, cid);
                self.mb.call_special(None, t, sig.id, &arg_locals);
                Ok((t, Type::Ref(cid)))
            }
            Expr::NewArray {
                elem,
                len,
                annotation,
                span: _,
            } => {
                let elem_ty = self.resolve_type(elem)?;
                let (len_op, lty) = self.lower_to_operand(len)?;
                if lty != Type::Int {
                    return Err(err(len.span(), "array length must be `int`"));
                }
                let t = self.mb.temp(elem_ty.clone().into_array());
                self.apply_annotation(annotation);
                self.mb.new_array(t, elem_ty.clone(), len_op);
                Ok((t, elem_ty.into_array()))
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let bop = binop_of(op);
                let (l, lt) = self.lower_to_operand(lhs)?;
                let (r, rt) = self.lower_to_operand(rhs)?;
                let out_ty = match bop {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        if lt != Type::Int || rt != Type::Int {
                            return Err(err(*span, "arithmetic requires `int` operands"));
                        }
                        Type::Int
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        if lt != Type::Int || rt != Type::Int {
                            return Err(err(*span, "comparison requires `int` operands"));
                        }
                        Type::Bool
                    }
                    BinOp::Eq | BinOp::Ne => {
                        if lt.is_reference() || rt.is_reference() {
                            return Err(err(
                                *span,
                                "reference equality is only supported against `null` \
                                 in conditions",
                            ));
                        }
                        if lt != rt {
                            return Err(err(*span, "equality requires same-typed operands"));
                        }
                        Type::Bool
                    }
                    BinOp::And | BinOp::Or => {
                        if lt != Type::Bool || rt != Type::Bool {
                            return Err(err(*span, "logical operators require `boolean`"));
                        }
                        Type::Bool
                    }
                };
                let t = self.mb.temp(out_ty.clone());
                self.mb.binop(t, bop, l, r);
                Ok((t, out_ty))
            }
            Expr::Not(inner, span) => {
                let (v, ty) = self.lower_to_operand(inner)?;
                if ty != Type::Bool {
                    return Err(err(*span, "`!` requires a `boolean`"));
                }
                let t = self.mb.temp(Type::Bool);
                self.mb.binop(t, BinOp::Eq, v, Operand::Const(0));
                Ok((t, Type::Bool))
            }
            Expr::Neg(inner, span) => {
                let (v, ty) = self.lower_to_operand(inner)?;
                if ty != Type::Int {
                    return Err(err(*span, "unary `-` requires an `int`"));
                }
                let t = self.mb.temp(Type::Int);
                self.mb.binop(t, BinOp::Sub, Operand::Const(0), v);
                Ok((t, Type::Int))
            }
        }
    }

    fn apply_annotation(&mut self, annotation: &Option<AllocAnnotation>) {
        match annotation {
            Some(AllocAnnotation::Leak) => self.mb.label_next(SiteLabel::Leak),
            Some(AllocAnnotation::FalsePositive(why)) => {
                self.mb.label_next(SiteLabel::FalsePositive(why.clone()))
            }
            None => {}
        }
    }

    /// Lowers an argument expression, giving `null` the parameter's type.
    fn lower_arg(&mut self, e: &Expr, pty: &Type) -> Result<LocalId> {
        if matches!(e, Expr::Null(_)) {
            let t = self.mb.temp(pty.clone());
            self.mb.assign_null(t);
            return Ok(t);
        }
        let (local, ty) = self.lower_to_local(e)?;
        self.check_assignable(&ty, pty, e.span())?;
        Ok(local)
    }

    fn lower_call(
        &mut self,
        base: Option<&Expr>,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<(LocalId, Type)> {
        // Resolve the receiver and the target signature.
        let (receiver, sig): (Option<LocalId>, Sig) = match base {
            None => {
                // Unqualified: method of the current class (or supers).
                let sig = self
                    .find_sig(self.class, name)
                    .ok_or_else(|| err(span, format!("unknown method `{name}`")))?;
                if sig.is_static {
                    (None, sig)
                } else {
                    if self.mb.program().method(self.mb.id()).is_static {
                        return Err(err(
                            span,
                            format!("instance method `{name}` called from a static method"),
                        ));
                    }
                    (Some(self.mb.this()), sig)
                }
            }
            Some(b) => {
                if let Some(cid) = self.class_name_of(b) {
                    let sig = self.find_sig(cid, name).ok_or_else(|| {
                        err(
                            span,
                            format!(
                                "no method `{name}` on class `{}`",
                                self.mb.program().class(cid).name
                            ),
                        )
                    })?;
                    if !sig.is_static {
                        return Err(err(
                            span,
                            format!("`{name}` is an instance method; call it on an object"),
                        ));
                    }
                    (None, sig)
                } else {
                    let (recv, rty) = self.lower_to_local(b)?;
                    let cid = match rty {
                        Type::Ref(c) => c,
                        other => {
                            return Err(err(span, format!("method call on non-object {other:?}")))
                        }
                    };
                    let sig = self.find_sig(cid, name).ok_or_else(|| {
                        err(
                            span,
                            format!(
                                "no method `{name}` on `{}`",
                                self.mb.program().class(cid).name
                            ),
                        )
                    })?;
                    if sig.is_static {
                        return Err(err(
                            span,
                            format!("`{name}` is static; call it via the class name"),
                        ));
                    }
                    (Some(recv), sig)
                }
            }
        };
        if sig.params.len() != args.len() {
            return Err(err(
                span,
                format!(
                    "`{name}` takes {} argument(s), {} given",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        let mut arg_locals = Vec::new();
        for (a, pty) in args.iter().zip(&sig.params) {
            arg_locals.push(self.lower_arg(a, pty)?);
        }
        let (dst, out_ty) = if sig.ret == Type::Void {
            (None, Type::Void)
        } else {
            (Some(self.mb.temp(sig.ret.clone())), sig.ret.clone())
        };
        match receiver {
            Some(recv) => {
                self.mb.call_virtual(dst, recv, sig.id, &arg_locals);
            }
            None => {
                self.mb.call_static(dst, sig.id, &arg_locals);
            }
        }
        match dst {
            Some(d) => Ok((d, out_ty)),
            None => {
                // Void calls used in statement position: return a dummy.
                let t = self.mb.temp(Type::Int);
                self.mb.const_int(t, 0);
                Ok((t, Type::Void))
            }
        }
    }

    /// If `e` is a bare name that denotes a class (and is not shadowed by a
    /// local variable), returns the class id.
    fn class_name_of(&self, e: &Expr) -> Option<ClassId> {
        match e {
            Expr::Name(name, _) if self.lookup_local(name).is_none() => {
                self.class_ids.get(name).copied()
            }
            _ => None,
        }
    }

    // ---------- assignments ----------

    fn lower_assign(&mut self, target: &Expr, value: &Expr, span: Span) -> Result<()> {
        match target {
            Expr::Name(name, nspan) => {
                if let Some(local) = self.lookup_local(name) {
                    let lty = self.local_type(local);
                    let vty = self.lower_into(local, value)?;
                    if !matches!(value, Expr::Null(_)) {
                        self.check_assignable(&vty, &lty, value.span())?;
                    }
                    return Ok(());
                }
                // Unqualified field assignment.
                if let Some(fid) = self.mb.program().resolve_field(self.class, name) {
                    let field = self.mb.program().field(fid);
                    let fty = field.ty.clone();
                    let is_static = field.is_static;
                    let v = self.lower_value_typed(value, &fty)?;
                    if is_static {
                        self.mb.static_store(fid, v);
                    } else {
                        if self.mb.program().method(self.mb.id()).is_static {
                            return Err(err(
                                *nspan,
                                format!("instance field `{name}` in a static method"),
                            ));
                        }
                        let this = self.mb.this();
                        self.mb.store(this, fid, v);
                    }
                    return Ok(());
                }
                Err(err(*nspan, format!("unknown variable `{name}`")))
            }
            Expr::Field {
                base,
                name,
                span: fspan,
            } => {
                if let Some(cid) = self.class_name_of(base) {
                    let fid = self
                        .mb
                        .program()
                        .resolve_field(cid, name)
                        .ok_or_else(|| err(*fspan, format!("unknown static field `{name}`")))?;
                    if !self.mb.program().field(fid).is_static {
                        return Err(err(*fspan, format!("`{name}` is not static")));
                    }
                    let fty = self.mb.program().field(fid).ty.clone();
                    let v = self.lower_value_typed(value, &fty)?;
                    self.mb.static_store(fid, v);
                    return Ok(());
                }
                let (base_local, base_ty) = self.lower_to_local(base)?;
                let cid = base_ty
                    .class()
                    .ok_or_else(|| err(*fspan, "field store on non-object"))?;
                let fid = self.mb.program().resolve_field(cid, name).ok_or_else(|| {
                    err(
                        *fspan,
                        format!(
                            "no field `{name}` on `{}`",
                            self.mb.program().class(cid).name
                        ),
                    )
                })?;
                if self.mb.program().field(fid).is_static {
                    return Err(err(*fspan, format!("`{name}` is static")));
                }
                let fty = self.mb.program().field(fid).ty.clone();
                let v = self.lower_value_typed(value, &fty)?;
                self.mb.store(base_local, fid, v);
                Ok(())
            }
            Expr::Index {
                base,
                index,
                span: ispan,
            } => {
                let (base_local, base_ty) = self.lower_to_local(base)?;
                let elem_ty = base_ty
                    .element()
                    .ok_or_else(|| err(*ispan, "indexing a non-array"))?
                    .clone();
                let (idx, ity) = self.lower_to_operand(index)?;
                if ity != Type::Int {
                    return Err(err(index.span(), "array index must be `int`"));
                }
                let v = self.lower_value_typed(value, &elem_ty)?;
                self.mb.array_store(base_local, idx, v);
                Ok(())
            }
            other => Err(err(span.max_or(other.span()), "invalid assignment target")),
        }
    }

    /// Lowers `value` with an expected type (so `null` works), checking
    /// assignability.
    fn lower_value_typed(&mut self, value: &Expr, expected: &Type) -> Result<LocalId> {
        if matches!(value, Expr::Null(_)) {
            let t = self.mb.temp(expected.clone());
            self.mb.assign_null(t);
            return Ok(t);
        }
        let (v, vty) = self.lower_to_local(value)?;
        self.check_assignable(&vty, expected, value.span())?;
        Ok(v)
    }

    // ---------- conditions ----------

    fn lower_cond(&mut self, cond: &Expr) -> Result<Cond> {
        match cond {
            Expr::NonDet(_) => Ok(Cond::NonDet),
            Expr::Binary {
                op: op @ ("==" | "!="),
                lhs,
                rhs,
                ..
            } => {
                // Reference comparisons against null become IsNull/NotNull.
                let null_side = match (&**lhs, &**rhs) {
                    (Expr::Null(_), other) | (other, Expr::Null(_)) => Some(other.clone()),
                    _ => None,
                };
                if let Some(other) = null_side {
                    let (local, ty) = self.lower_to_local(&other)?;
                    if !ty.is_reference() {
                        return Err(err(other.span(), "`null` compared with a non-reference"));
                    }
                    return Ok(if *op == "==" {
                        Cond::IsNull(local)
                    } else {
                        Cond::NotNull(local)
                    });
                }
                self.lower_cmp_cond(cond)
            }
            Expr::Binary {
                op: "<" | "<=" | ">" | ">=",
                ..
            } => self.lower_cmp_cond(cond),
            Expr::Not(inner, _) => {
                let (local, ty) = self.lower_to_local(inner)?;
                if ty != Type::Bool {
                    return Err(err(inner.span(), "`!` requires a `boolean`"));
                }
                Ok(Cond::NotLocal(local))
            }
            other => {
                let (local, ty) = self.lower_to_local(other)?;
                if ty != Type::Bool {
                    return Err(err(other.span(), "condition must be `boolean`"));
                }
                Ok(Cond::Local(local))
            }
        }
    }

    fn lower_cmp_cond(&mut self, cond: &Expr) -> Result<Cond> {
        let Expr::Binary { op, lhs, rhs, span } = cond else {
            unreachable!("caller checked")
        };
        let (l, lt) = self.lower_to_operand(lhs)?;
        let (r, rt) = self.lower_to_operand(rhs)?;
        let bop = binop_of(op);
        match bop {
            BinOp::Eq | BinOp::Ne => {
                if lt != rt {
                    return Err(err(*span, "equality requires same-typed operands"));
                }
                if lt.is_reference() {
                    return Err(err(
                        *span,
                        "reference equality is only supported against `null`",
                    ));
                }
            }
            _ => {
                if lt != Type::Int || rt != Type::Int {
                    return Err(err(*span, "comparison requires `int` operands"));
                }
            }
        }
        Ok(Cond::Cmp {
            op: bop,
            lhs: l,
            rhs: r,
        })
    }
}

trait SpanExt {
    fn max_or(self, other: Span) -> Span;
}

impl SpanExt for Span {
    fn max_or(self, other: Span) -> Span {
        if self == Span::default() {
            other
        } else {
            self
        }
    }
}

fn binop_of(op: &str) -> BinOp {
    match op {
        "+" => BinOp::Add,
        "-" => BinOp::Sub,
        "*" => BinOp::Mul,
        "/" => BinOp::Div,
        "%" => BinOp::Rem,
        "<" => BinOp::Lt,
        "<=" => BinOp::Le,
        ">" => BinOp::Gt,
        ">=" => BinOp::Ge,
        "==" => BinOp::Eq,
        "!=" => BinOp::Ne,
        "&&" => BinOp::And,
        "||" => BinOp::Or,
        other => unreachable!("parser produced unknown operator {other}"),
    }
}
