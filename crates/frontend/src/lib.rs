//! Frontend for the LeakChecker reproduction: a Java-like surface language
//! compiled to the `leakchecker-ir` three-address IR.
//!
//! The original tool analyzes Java bytecode through the Soot framework.
//! This crate fills that role for the reproduction: subject programs are
//! written in a compact Java-like syntax and compiled to the IR every
//! analysis consumes.
//!
//! # Language summary
//!
//! * `class C extends D { ... }` with instance/static fields and methods;
//!   `library class` marks standard-library code (which the detector
//!   handles with a stronger flows-in condition).
//! * Statements: declarations with initializers, assignments, `if`/`else`,
//!   `while`, `return`, `break`, `continue`, call statements.
//! * Expressions: `new C(args)`, `new T[n]`, field and array accesses,
//!   virtual / static calls, integer and boolean arithmetic, `nondet()`
//!   (an opaque boolean the analyses treat as unknown).
//! * Annotations: `@check while (...) { ... }` designates the loop the
//!   detector analyzes; `@region` on a method designates a checkable
//!   region (wrapped in an artificial loop); `@leak` / `@fp("why")` before
//!   `new` record ground truth used by the evaluation harness.
//!
//! # Example
//!
//! ```
//! let unit = leakchecker_frontend::compile(r#"
//!     class Event { }
//!     class Server {
//!         Event last;
//!         static void main() {
//!             Server s = new Server();
//!             @check while (nondet()) {
//!                 Event e = new Event();
//!                 s.last = e;
//!             }
//!         }
//!     }
//! "#).unwrap();
//! assert_eq!(unit.checked_loops.len(), 1);
//! assert!(unit.program.entry().is_some());
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod resolve;

pub use error::{CompileError, Phase, Pos, Span};
pub use resolve::CompiledUnit;

/// Compiles source text to IR in one step: tokenize, parse, resolve.
///
/// # Errors
///
/// Returns the first [`CompileError`] from any phase.
pub fn compile(source: &str) -> error::Result<CompiledUnit> {
    let unit = parser::parse(source)?;
    resolve::lower(&unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use leakchecker_ir::stmt::{SiteLabel, Stmt};
    use leakchecker_ir::validate::assert_valid;
    use leakchecker_ir::visit::walk_stmts;

    #[test]
    fn compiles_figure1_like_program() {
        let unit = compile(
            r#"
            class Order { int custId; }
            class Customer {
                Order[] orders = new Order[16];
                int n;
                void addOrder(Order y) {
                    Order[] arr = this.orders;
                    arr[this.n] = y;
                    this.n = this.n + 1;
                }
            }
            class Transaction {
                Customer[] customers = new Customer[4];
                Order curr;
                Transaction() {
                    int i = 0;
                    while (i < 4) {
                        Customer newCust = new Customer();
                        Customer[] cs = this.customers;
                        cs[i] = newCust;
                        i = i + 1;
                    }
                }
                void process(Order p) {
                    this.curr = p;
                    Customer[] custs = this.customers;
                    Customer c = custs[p.custId];
                    c.addOrder(p);
                }
                void display() {
                    Order o = this.curr;
                    if (o != null) {
                        this.curr = null;
                    }
                }
            }
            class Main {
                static void main() {
                    Transaction t = new Transaction();
                    @check while (nondet()) {
                        t.display();
                        Order order = @leak new Order();
                        t.process(order);
                    }
                }
            }
            "#,
        )
        .unwrap();
        assert_valid(&unit.program);
        assert_eq!(unit.checked_loops.len(), 1);
        // The @leak annotation landed on the Order allocation.
        let leaks: Vec<_> = unit
            .program
            .allocs()
            .iter()
            .filter(|a| a.label.is_leak())
            .collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].describe, "new Order");
    }

    #[test]
    fn constructor_runs_field_initializers() {
        let unit = compile(
            "class C { C next = null; int n = 7; }
             class Main { static void main() { C c = new C(); } }",
        )
        .unwrap();
        let init = unit.program.method_by_path("C.<init>").unwrap();
        let body = &unit.program.method(init).body;
        let mut stores = 0;
        walk_stmts(body, &mut |s| {
            if matches!(s, Stmt::Store { .. }) {
                stores += 1;
            }
        });
        assert_eq!(stores, 2);
    }

    #[test]
    fn implicit_super_constructor_chaining() {
        let unit = compile(
            "class Base { int x = 3; }
             class Derived extends Base { int y = 4; }
             class Main { static void main() { Derived d = new Derived(); } }",
        )
        .unwrap();
        let init = unit.program.method_by_path("Derived.<init>").unwrap();
        let mut calls = 0;
        walk_stmts(&unit.program.method(init).body, &mut |s| {
            if matches!(s, Stmt::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 1, "implicit super() call expected");
    }

    #[test]
    fn while_condition_with_field_read_recomputes() {
        let unit = compile(
            "class Node { Node next; }
             class Main {
               static void main() {
                 Node head = new Node();
                 Node cur = head;
                 while (cur != null) {
                   cur = cur.next;
                 }
               }
             }",
        )
        .unwrap();
        assert_valid(&unit.program);
    }

    #[test]
    fn region_annotation_is_collected() {
        let unit = compile(
            "class Plugin { @region void runCompare() { } }
             class Main { static void main() { } }",
        )
        .unwrap();
        assert_eq!(unit.region_methods.len(), 1);
        assert_eq!(
            unit.program.qualified_name(unit.region_methods[0]),
            "Plugin.runCompare"
        );
    }

    #[test]
    fn static_fields_and_methods() {
        let unit = compile(
            "class Registry {
               static Registry instance;
               static Registry get() {
                 Registry r = Registry.instance;
                 if (r == null) {
                   r = new Registry();
                   Registry.instance = r;
                 }
                 return r;
               }
             }
             class Main { static void main() { Registry r = Registry.get(); } }",
        )
        .unwrap();
        assert_valid(&unit.program);
    }

    #[test]
    fn virtual_dispatch_compiles_through_supertype() {
        let unit = compile(
            "class Shape { int area() { return 0; } }
             class Square extends Shape { int area() { return 4; } }
             class Main {
               static void main() {
                 Shape s = new Square();
                 int a = s.area();
               }
             }",
        )
        .unwrap();
        assert_valid(&unit.program);
        // The statically resolved callee is Shape.area (virtual dispatch
        // resolves it later).
        let main = unit.program.entry().unwrap();
        let mut target = None;
        walk_stmts(&unit.program.method(main).body, &mut |s| {
            if let Stmt::Call { method, .. } = s {
                if unit.program.method(*method).name == "area" {
                    target = Some(*method);
                }
            }
        });
        assert_eq!(unit.program.qualified_name(target.unwrap()), "Shape.area");
    }

    #[test]
    fn fp_annotation_label() {
        let unit = compile(
            "class C {
               static void main() {
                 C x = @fp(\"singleton\") new C();
               }
             }",
        )
        .unwrap();
        let labeled: Vec<_> = unit
            .program
            .allocs()
            .iter()
            .filter(|a| a.label.is_expected_fp())
            .collect();
        assert_eq!(labeled.len(), 1);
        assert_eq!(
            labeled[0].label,
            SiteLabel::FalsePositive("singleton".into())
        );
    }

    #[test]
    fn errors_unknown_variable() {
        let e = compile("class C { void m() { x = 1; } }").unwrap_err();
        assert!(e.message.contains("unknown variable"), "{e}");
    }

    #[test]
    fn errors_unknown_class() {
        let e = compile("class C { void m() { D d = new D(); } }").unwrap_err();
        assert!(e.message.contains("unknown"), "{e}");
    }

    #[test]
    fn errors_type_mismatch() {
        let e = compile(
            "class A { } class B { }
             class C { void m() { A a = new A(); B b = new B(); a = b; } }",
        )
        .unwrap_err();
        assert!(e.message.contains("type mismatch"), "{e}");
    }

    #[test]
    fn errors_arity_mismatch() {
        let e = compile("class C { void f(int x) { } void m() { f(); } }").unwrap_err();
        assert!(e.message.contains("argument"), "{e}");
    }

    #[test]
    fn errors_inheritance_cycle() {
        let e = compile("class A extends B { } class B extends A { }").unwrap_err();
        assert!(e.message.contains("cycle"), "{e}");
    }

    #[test]
    fn errors_this_in_static() {
        let e = compile("class C { int f; static void m() { int x = this.f; } }").unwrap_err();
        assert!(e.message.contains("static"), "{e}");
    }

    #[test]
    fn errors_duplicate_class() {
        let e = compile("class A { } class A { }").unwrap_err();
        assert!(e.message.contains("duplicate class"), "{e}");
    }

    #[test]
    fn subclass_assignment_allowed() {
        compile(
            "class A { } class B extends A { }
             class C { void m() { A a = new B(); } }",
        )
        .unwrap();
    }

    #[test]
    fn unqualified_field_and_method_access() {
        let unit = compile(
            "class Counter {
               int n;
               void bump() { n = n + 1; }
               void twice() { bump(); bump(); }
             }
             class Main { static void main() { Counter c = new Counter(); c.twice(); } }",
        )
        .unwrap();
        assert_valid(&unit.program);
    }
}
