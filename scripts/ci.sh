#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. The workspace has no
# external dependencies, so everything runs with --offline and an empty
# cargo registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> large-program scale smoke (100k statements, timed)"
# Generates a seed-deterministic ~100k-statement subject, checks it at
# jobs 1 and 4, byte-compares the reports, and enforces a sequential
# wall-clock ceiling. The end-to-end speedup(jobs=4) >= 2x floor and the
# effects-phase speedup(jobs=4) >= 2x floor (the parallel Jacobi rounds)
# are asserted only on machines with >= 4 cores (scale_smoke skips them
# with a notice on narrower ones, where parallel speedup is not
# observable).
cargo run -q --release --offline -p leakchecker-bench --bin scale_smoke -- \
  --stmts 100000 --ceiling 60 --min-speedup 2.0 --min-effects-speedup 2.0 \
  --jobs-list 1,4

echo "==> effects lattice laws + parallel Jacobi equivalence"
# Satellite suites of the parallel effects fixpoint: the lattice-law
# battery (the algebraic preconditions of the Jacobi merge) and the
# exact EffectSummary equivalence sweep (corpus exemplars, large
# generated subjects, 200 fuzz seeds, witness/fault fallbacks).
cargo test -q --offline --test effects_lattice --test effects_parallel

echo "==> fuzz smoke (200 fixed seeds, machine width)"
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 200 --jobs 0

echo "==> fault-injection smoke (50 seeds: exhaust@3, panic@5, deadline@40)"
# The quarantined seed must surface as the degraded-incomplete exit
# code (3), never as clean (0) or as a soundness violation (1).
set +e
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 50 --jobs 0 --inject exhaust@3,panic@5,deadline@40 2>/dev/null
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "fault-injection smoke: expected exit 3 (degraded), got $rc" >&2
  exit 1
fi

echo "==> injected-deadline determinism (jobs 1 vs 8)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 25 --jobs 1 --inject deadline@0 --json "$tmpdir/j1.json" >/dev/null
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 25 --jobs 8 --inject deadline@0 --json "$tmpdir/j8.json" >/dev/null
cmp "$tmpdir/j1.json" "$tmpdir/j8.json"

echo "==> corpus replay"
cargo test -q --offline --test corpus_replay

echo "==> server smoke (20 mixed requests, SIGTERM drain, workers 1 vs 8)"
# Start a daemon, drive it with the soak client's deterministic request
# mix (plain checks, governed checks, injected panics, malformed
# lines), SIGTERM it, and require a graceful drain (exit 0). Run twice
# at different worker widths; the normalized responses must be
# byte-identical.
leakc="./target/release/leakc"
soak="$(dirname "$leakc")/soak"
cargo build -q --release --offline -p leakchecker-bench --bin soak
serve_smoke() {
  local workers="$1" out="$2"
  "$leakc" serve --addr 127.0.0.1:0 --workers "$workers" \
    > "$tmpdir/serve-$workers.log" 2>/dev/null &
  local pid=$!
  local addr=""
  for _ in $(seq 1 100); do
    addr="$(grep -om1 '127.0.0.1:[0-9]*' "$tmpdir/serve-$workers.log" || true)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "server smoke: daemon (workers $workers) never bound" >&2
    exit 1
  fi
  "$soak" --connect "$addr" --mixed 20 > "$out"
  kill -TERM "$pid"
  local rc=0
  wait "$pid" || rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "server smoke: SIGTERM drain (workers $workers) exited $rc, want 0" >&2
    exit 1
  fi
  grep -q "drained" "$tmpdir/serve-$workers.log" || {
    echo "server smoke: no drain summary (workers $workers)" >&2
    exit 1
  }
}
serve_smoke 1 "$tmpdir/responses-w1.txt"
serve_smoke 8 "$tmpdir/responses-w8.txt"
cmp "$tmpdir/responses-w1.txt" "$tmpdir/responses-w8.txt"

echo "==> fleet chaos smoke (3 shards + router, kill -9 one shard mid-flight)"
# The byte-identical-under-chaos gate from DESIGN.md §14: a campaign
# through a 3-shard router with one shard kill -9'd mid-flight must
# produce exactly the bytes of the same campaign against a fault-free
# single-shard fleet, and the router must still drain cleanly (exit 0).
# --checks-only keeps health/stats out of the mix, since those frames
# legitimately describe the fleet shape.
wait_addr() {
  local log="$1" addr=""
  for _ in $(seq 1 100); do
    addr="$(grep -om1 '127.0.0.1:[0-9]*' "$log" 2>/dev/null || true)"
    [ -n "$addr" ] && break
    sleep 0.1
  done
  if [ -z "$addr" ]; then
    echo "fleet smoke: process never bound ($log)" >&2
    exit 1
  fi
  echo "$addr"
}
# Fault-free baseline: one shard behind a router.
"$leakc" serve --addr 127.0.0.1:0 --shard base \
  > "$tmpdir/fleet-base.log" 2>/dev/null &
base_pid=$!
"$leakc" route --shard "$(wait_addr "$tmpdir/fleet-base.log")" \
  > "$tmpdir/route-base.log" 2>/dev/null &
base_router_pid=$!
"$soak" --connect "$(wait_addr "$tmpdir/route-base.log")" \
  --mixed 60 --checks-only > "$tmpdir/fleet-baseline.txt"
kill -TERM "$base_router_pid" "$base_pid"
wait "$base_router_pid" "$base_pid" || {
  echo "fleet smoke: baseline router/shard did not drain cleanly" >&2
  exit 1
}
# Chaos run: three shards, one of them murdered mid-campaign.
shard_pids=()
shard_flags=()
for i in 0 1 2; do
  "$leakc" serve --addr 127.0.0.1:0 --shard "shard-$i" \
    > "$tmpdir/fleet-s$i.log" 2>/dev/null &
  shard_pids+=($!)
done
for i in 0 1 2; do
  shard_flags+=(--shard "$(wait_addr "$tmpdir/fleet-s$i.log")")
done
"$leakc" route "${shard_flags[@]}" > "$tmpdir/route-chaos.log" 2>/dev/null &
router_pid=$!
"$soak" --connect "$(wait_addr "$tmpdir/route-chaos.log")" \
  --mixed 60 --checks-only > "$tmpdir/fleet-chaos.txt" &
soak_pid=$!
sleep 0.3
kill -9 "${shard_pids[0]}" 2>/dev/null || true
wait "$soak_pid" || {
  echo "fleet smoke: soak campaign failed while a shard was down" >&2
  exit 1
}
cmp "$tmpdir/fleet-baseline.txt" "$tmpdir/fleet-chaos.txt"
kill -TERM "$router_pid"
rc=0
wait "$router_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
  echo "fleet smoke: router exited $rc after chaos, want 0" >&2
  exit 1
fi
kill -TERM "${shard_pids[1]}" "${shard_pids[2]}"
wait "${shard_pids[1]}" "${shard_pids[2]}" || true
wait "${shard_pids[0]}" 2>/dev/null || true

echo "==> metrics scrape smoke (protocol verb + GET /metrics, strict parse)"
# Start a daemon with a metrics listener, drive the mixed workload, and
# strict-parse both expositions (HELP/TYPE discipline, histogram
# cumulativity, no duplicate series), requiring the core families to
# have moved.
"$leakc" serve --addr 127.0.0.1:0 --metrics-addr 127.0.0.1:0 --workers 2 \
  > "$tmpdir/serve-metrics.log" 2>/dev/null &
metrics_pid=$!
metrics_main="$(wait_addr "$tmpdir/serve-metrics.log")"
metrics_http=""
for _ in $(seq 1 100); do
  metrics_http="$(grep -om1 'metrics on 127\.0\.0\.1:[0-9]*' \
    "$tmpdir/serve-metrics.log" | grep -o '127.0.0.1:[0-9]*' || true)"
  [ -n "$metrics_http" ] && break
  sleep 0.1
done
if [ -z "$metrics_http" ]; then
  echo "metrics smoke: daemon never bound its metrics listener" >&2
  exit 1
fi
"$soak" --connect "$metrics_main" --mixed 20 > /dev/null
"$soak" --scrape "$metrics_main" --scrape-http "$metrics_http" \
  --require leakc_up:1 --require leakc_checks_total:1 \
  --require leakc_requests_served_total:1 > "$tmpdir/scrape.txt"
kill -TERM "$metrics_pid"
wait "$metrics_pid" || {
  echo "metrics smoke: daemon did not drain cleanly" >&2
  exit 1
}

echo "==> coalescing gate (4 identical campaigns, workers 1, byte-identical to --no-coalesce)"
# Baseline: one client runs the deterministic campaign against a
# coalescing-off single-worker daemon.
"$leakc" serve --addr 127.0.0.1:0 --no-coalesce --workers 1 \
  > "$tmpdir/serve-nocoalesce.log" 2>/dev/null &
nocoalesce_pid=$!
"$soak" --connect "$(wait_addr "$tmpdir/serve-nocoalesce.log")" \
  --mixed 30 --checks-only > "$tmpdir/coalesce-off.txt"
kill -TERM "$nocoalesce_pid"
wait "$nocoalesce_pid" || {
  echo "coalescing gate: baseline daemon did not drain cleanly" >&2
  exit 1
}
# Coalescing on: four clients race the identical campaign against one
# worker, so queued twins attach to one computation. Every client's
# response stream must byte-equal the coalescing-off baseline, and the
# daemon must report at least one coalesced twin. Whether any given
# round overlaps is scheduling luck, so the burst retries (the
# byte-identity invariant is asserted on every round regardless).
"$leakc" serve --addr 127.0.0.1:0 --workers 1 \
  > "$tmpdir/serve-coalesce.log" 2>/dev/null &
coalesce_pid=$!
coalesce_addr="$(wait_addr "$tmpdir/serve-coalesce.log")"
coalesced=0
for round in $(seq 1 10); do
  client_pids=()
  for c in 1 2 3 4; do
    "$soak" --connect "$coalesce_addr" --mixed 30 --checks-only \
      > "$tmpdir/coalesce-on-$c.txt" &
    client_pids+=($!)
  done
  for pid in "${client_pids[@]}"; do
    wait "$pid" || {
      echo "coalescing gate: campaign client failed (round $round)" >&2
      exit 1
    }
  done
  for c in 1 2 3 4; do
    cmp "$tmpdir/coalesce-off.txt" "$tmpdir/coalesce-on-$c.txt"
  done
  if "$soak" --scrape "$coalesce_addr" \
    --require leakc_requests_coalesced_total:1 > /dev/null 2>&1; then
    coalesced=1
    break
  fi
done
if [ "$coalesced" -ne 1 ]; then
  echo "coalescing gate: no request coalesced in 10 concurrent rounds" >&2
  exit 1
fi
kill -TERM "$coalesce_pid"
wait "$coalesce_pid" || {
  echo "coalescing gate: daemon did not drain cleanly" >&2
  exit 1
}

echo "==> fleet throughput gate (3 shards, coalescing on, mixed workload)"
# The in-process fleet campaign scrapes and strict-parses the router's
# aggregated exposition mid-soak. The >=100k req/s aggregate floor only
# holds with real parallelism, so (like the scale smoke's speedup
# floors) it is asserted only on machines with >= 8 cores.
cores="$(nproc 2>/dev/null || echo 1)"
if [ "$cores" -ge 8 ]; then
  cargo run -q --release --offline -p leakchecker-bench --bin soak -- \
    --fleet 3 --clients 8 --requests 400 --workers 4 --min-rps 100000
else
  echo "    (skipping >=100k req/s floor: $cores core(s); functional fleet pass only)"
  cargo run -q --release --offline -p leakchecker-bench --bin soak -- \
    --fleet 3 --clients 4 --requests 25 --workers 2
fi

echo "==> witness determinism (--explain/--trace, jobs 1 vs 8, all exemplars)"
# Witness output is a pure function of the program: for every corpus
# exemplar the --explain render (modulo the timing header) and the
# --trace JSONL must be byte-identical at any jobs width.
for exemplar in tests/corpus/*.jml; do
  name="$(basename "$exemplar" .jml)"
  for jobs in 1 8; do
    set +e
    "$leakc" check "$exemplar" --explain --jobs "$jobs" \
      --trace "$tmpdir/$name-j$jobs.jsonl" > "$tmpdir/$name-j$jobs.txt"
    rc=$?
    set -e
    if [ "$rc" -gt 3 ]; then
      echo "witness determinism: $exemplar (jobs $jobs) exited $rc" >&2
      exit 1
    fi
    # Drop wall-clock timings, the jobs count, and the per-run trace
    # path; everything else must match exactly.
    grep -v '^target \|^  phases:\|trace events written to' \
      "$tmpdir/$name-j$jobs.txt" > "$tmpdir/$name-j$jobs.norm"
  done
  cmp "$tmpdir/$name-j1.norm" "$tmpdir/$name-j8.norm"
  cmp "$tmpdir/$name-j1.jsonl" "$tmpdir/$name-j8.jsonl"
done

echo "==> journal resume determinism (kill -9 mid-campaign, then --resume)"
# A campaign killed mid-flight and resumed from its journal must emit
# the same summary JSON as an uninterrupted run — at any jobs width.
fuzz_args="fuzz --seeds 48 --seed 11 --iterations 6"
$leakc $fuzz_args --jobs 1 --json "$tmpdir/full.json" >/dev/null
$leakc $fuzz_args --jobs 2 --journal "$tmpdir/campaign.journal" \
  >/dev/null 2>&1 &
fuzz_pid=$!
sleep 0.3
kill -9 "$fuzz_pid" 2>/dev/null || true
wait "$fuzz_pid" 2>/dev/null || true
set +e
$leakc $fuzz_args --jobs 8 --resume "$tmpdir/campaign.journal" \
  --json "$tmpdir/resumed.json" >/dev/null
rc=$?
set -e
if [ "$rc" -gt 1 ]; then
  echo "journal resume: resume run exited $rc" >&2
  exit 1
fi
cmp "$tmpdir/full.json" "$tmpdir/resumed.json"

echo "==> warm-vs-cold cache determinism (1-method edit, leakc level)"
# A cold `--cache` run, an analysis-invisible one-method edit, and the
# warm re-check must agree byte-for-byte with a cache-less run — same
# --json summary, same report lines (modulo timing/cache telemetry).
cat > "$tmpdir/incr.jml" <<'JML'
class Item { }
class Holder { Item item; }
class Main {
  static void main() {
    Holder h = new Holder();
    int pad = 1 + 2;
    @check while (nondet()) {
      Item it = new Item();
      h.item = it;
    }
  }
}
JML
norm_check() {
  grep -v '^target \|^  phases:\|^cache:\|^summary written to ' "$1" > "$2"
}
set +e
"$leakc" check "$tmpdir/incr.jml" --json "$tmpdir/incr-nocache.json" \
  > "$tmpdir/incr-nocache.txt"; rc_a=$?
"$leakc" check "$tmpdir/incr.jml" --cache "$tmpdir/cache" \
  --json "$tmpdir/incr-cold.json" > "$tmpdir/incr-cold.txt"; rc_b=$?
set -e
if [ "$rc_a" -ne 1 ] || [ "$rc_b" -ne 1 ]; then
  echo "cache determinism: cold runs exited $rc_a/$rc_b, want 1" >&2
  exit 1
fi
grep -q '1 misses' "$tmpdir/incr-cold.txt" || {
  echo "cache determinism: cold run did not count its miss" >&2
  exit 1
}
# The one-method edit, in place: new integer constants, same analysis
# semantics, same path (the --json summary embeds the file name).
sed 's/int pad = 1 + 2;/int pad = 7 + 9;/' "$tmpdir/incr.jml" \
  > "$tmpdir/incr-edited.jml"
cmp -s "$tmpdir/incr.jml" "$tmpdir/incr-edited.jml" && {
  echo "cache determinism: edit did not change the source" >&2
  exit 1
}
mv "$tmpdir/incr-edited.jml" "$tmpdir/incr.jml"
set +e
"$leakc" check "$tmpdir/incr.jml" --cache "$tmpdir/cache" \
  --json "$tmpdir/incr-warm.json" > "$tmpdir/incr-warm.txt"; rc_c=$?
set -e
if [ "$rc_c" -ne 1 ]; then
  echo "cache determinism: warm run exited $rc_c, want 1" >&2
  exit 1
fi
grep -q '(cached)' "$tmpdir/incr-warm.txt" || {
  echo "cache determinism: edited re-check did not replay warm" >&2
  exit 1
}
cmp "$tmpdir/incr-nocache.json" "$tmpdir/incr-cold.json"
cmp "$tmpdir/incr-nocache.json" "$tmpdir/incr-warm.json"
norm_check "$tmpdir/incr-nocache.txt" "$tmpdir/incr-nocache.norm"
norm_check "$tmpdir/incr-warm.txt" "$tmpdir/incr-warm.norm"
cmp "$tmpdir/incr-nocache.norm" "$tmpdir/incr-warm.norm"

echo "==> cache smoke (100k statements, warm >= 10x cold, byte-identical)"
# The incremental-analysis acceptance gate: seed the store cold, bump
# one integer constant in one stage method, and the warm re-check must
# hit, replay byte-identically at jobs 1 and 4, and beat cold by >= 10x.
cargo run -q --release --offline -p leakchecker-bench --bin cache_smoke -- \
  --stmts 100000 --jobs-list 1,4 --min-speedup 10

echo "==> cache chaos matrix (torn-cache / flip / trunc / compound)"
# The crash-safety gate: under every disk fault the store degrades to a
# miss — never a wrong answer — and the warm-path report byte-equals a
# cache-disabled run. Record 1 is the result record, records 2.. the
# method records, so the matrix covers payload rot, a torn method tail,
# a lost tail, and compound damage.
for plan in 'flip@1:40' 'torn-cache@2' 'trunc@1' 'flip@2:9,torn-cache@3'; do
  cargo run -q --release --offline -p leakchecker-bench --bin cache_smoke -- \
    --stmts 20000 --chaos "$plan"
done

echo "CI OK"
