#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. The workspace has no
# external dependencies, so everything runs with --offline and an empty
# cargo registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> fuzz smoke (200 fixed seeds, machine width)"
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 200 --jobs 0

echo "==> fault-injection smoke (50 seeds: exhaust@3, panic@5, deadline@40)"
# The quarantined seed must surface as the degraded-incomplete exit
# code (3), never as clean (0) or as a soundness violation (1).
set +e
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 50 --jobs 0 --inject exhaust@3,panic@5,deadline@40 2>/dev/null
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "fault-injection smoke: expected exit 3 (degraded), got $rc" >&2
  exit 1
fi

echo "==> injected-deadline determinism (jobs 1 vs 8)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 25 --jobs 1 --inject deadline@0 --json "$tmpdir/j1.json" >/dev/null
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 25 --jobs 8 --inject deadline@0 --json "$tmpdir/j8.json" >/dev/null
cmp "$tmpdir/j1.json" "$tmpdir/j8.json"

echo "==> corpus replay"
cargo test -q --offline --test corpus_replay

echo "CI OK"
