#!/usr/bin/env bash
# Offline CI gate: build, test, format, lint. The workspace has no
# external dependencies, so everything runs with --offline and an empty
# cargo registry.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --offline

echo "==> cargo test"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> fuzz smoke (200 fixed seeds, machine width)"
cargo run -q --release --offline -p leakchecker-cli --bin leakc -- \
  fuzz --seeds 200 --jobs 0

echo "==> corpus replay"
cargo test -q --offline --test corpus_replay

echo "CI OK"
