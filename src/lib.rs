//! Umbrella crate re-exporting the LeakChecker reproduction workspace.
//!
//! See the individual `leakchecker-*` crates for the actual functionality;
//! this package exists to host the workspace-level examples and integration
//! tests.

pub use leakchecker;
pub use leakchecker_benchsuite as benchsuite;
pub use leakchecker_callgraph as callgraph;
pub use leakchecker_dynbaseline as dynbaseline;
pub use leakchecker_effects as effects;
pub use leakchecker_frontend as frontend;
pub use leakchecker_interp as interp;
pub use leakchecker_ir as ir;
pub use leakchecker_pointsto as pointsto;
