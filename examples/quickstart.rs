//! Quickstart: compile a small Java-like program, point LeakChecker at
//! its event loop, and print the leak report.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program is the paper's Figure 1 shape: a transaction loop where
//! each `Order` is saved both in `Transaction.curr` (properly read back by
//! the next iteration's `display()`) and in a per-customer order array
//! that nothing ever reads — the redundant reference that leaks.

use leakchecker::{check, render_all, CheckTarget, DetectorConfig};

const PROGRAM: &str = r#"
class Order { int custId; }

class Customer {
    Order[] orders = new Order[64];
    int n;
    void addOrder(Order y) {
        Order[] arr = this.orders;
        arr[this.n] = y;
        this.n = this.n + 1;
    }
}

class Transaction {
    Customer[] customers = new Customer[4];
    Order curr;
    Transaction() {
        int i = 0;
        while (i < 4) {
            Customer newCust = new Customer();
            Customer[] cs = this.customers;
            cs[i] = newCust;
            i = i + 1;
        }
    }
    void process(Order p) {
        this.curr = p;
        Customer[] custs = this.customers;
        Customer c = custs[p.custId];
        c.addOrder(p);
    }
    void display() {
        Order o = this.curr;
        if (o != null) {
            this.curr = null;
        }
    }
}

class Main {
    static void main() {
        Transaction t = new Transaction();
        @check while (nondet()) {
            t.display();
            Order order = new Order();
            t.process(order);
        }
    }
}
"#;

fn main() {
    let unit = leakchecker_frontend::compile(PROGRAM).expect("program compiles");
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .expect("analysis runs");

    println!(
        "analyzed loop: 1 designated, {} reachable methods, {} statements\n",
        result.stats.methods, result.stats.statements
    );
    print!("{}", render_all(&result.program, &result.reports));

    // The report names the Order allocation and the redundant edge — the
    // customer order array — while the properly carried-over curr edge is
    // recognized as matched and not reported.
    assert_eq!(result.reports.len(), 1);
    assert_eq!(result.reports[0].describe, "new Order");
    println!("\nthe `Transaction.curr` edge was matched by display() and not reported;");
    println!("the order-array edge has no matching read: the leak's root cause.");
}
