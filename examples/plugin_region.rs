//! Checkable regions: analyzing component code that has no visible event
//! loop (the Eclipse-plugin scenario).
//!
//! ```text
//! cargo run --example plugin_region
//! ```
//!
//! Plugin developers cannot see the framework loop that calls their entry
//! points. Marking a method `@region` makes the detector wrap it in an
//! artificial loop: the receiver and arguments become the long-lived
//! "framework" objects, and every invocation plays one iteration.

use leakchecker::{check, render_all, CheckTarget, DetectorConfig};

const PLUGIN: &str = r#"
class Snapshot { int[] data = new int[512]; }

class SnapshotCache {
    Snapshot[] slots = new Snapshot[4096];
    int n;
    void remember(Snapshot s) {
        Snapshot[] arr = this.slots;
        arr[this.n] = s;
        this.n = this.n + 1;
    }
    Snapshot latest() {
        Snapshot[] arr = this.slots;
        Snapshot s = arr[this.n - 1];
        return s;
    }
}

class RefreshPlugin {
    SnapshotCache cache = new SnapshotCache();
    Snapshot shown;

    // The plugin's entry point: invoked by an invisible framework loop.
    @region void onRefresh() {
        // Show the previous snapshot (properly carried over)...
        Snapshot prev = this.shown;
        // ...take a new one and both display and archive it.
        Snapshot fresh = new Snapshot();
        this.shown = fresh;
        SnapshotCache c = this.cache;
        c.remember(fresh);
        // The archive is never consulted again: every refresh pins one
        // more snapshot.
    }
}

class Main { static void main() { } }
"#;

fn main() {
    let unit = leakchecker_frontend::compile(PLUGIN).expect("plugin compiles");
    assert_eq!(unit.region_methods.len(), 1);

    let result = check(
        &unit.program,
        CheckTarget::Region(unit.region_methods[0]),
        DetectorConfig::default(),
    )
    .expect("analysis runs");

    println!("checked region: RefreshPlugin.onRefresh (artificial loop synthesized)\n");
    print!("{}", render_all(&result.program, &result.reports));

    assert_eq!(result.reports.len(), 1);
    assert_eq!(result.reports[0].describe, "new Snapshot");
    println!("\nthe `shown` edge is matched (each refresh reads the previous snapshot);");
    println!("the cache slot is the redundant reference — the leak a framework user");
    println!("would only ever see in production, found without running anything.");
}
