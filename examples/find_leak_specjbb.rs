//! End-to-end case study on the SPECjbb-style subject: run the static
//! detector, score it against ground truth, then *demonstrate* the leak
//! by executing the program and watching the escaped-heap curve grow.
//!
//! ```text
//! cargo run --example find_leak_specjbb
//! ```

use leakchecker::{check, render_all};
use leakchecker_benchsuite::{by_name, evaluate};
use leakchecker_dynbaseline::heap_growth_curve;
use leakchecker_interp::{run, Config, NonDetPolicy};

fn main() {
    let subject = by_name("specjbb").expect("subject registered");
    println!("subject: {} — {}\n", subject.name, subject.description);

    // Static detection: no inputs, no execution.
    let unit = subject.compile();
    let result = check(
        &unit.program,
        subject.target(&unit),
        subject.detector_config(),
    )
    .expect("analysis runs");
    print!("{}", render_all(&result.program, &result.reports));

    let score = evaluate::score(&result.program, &result);
    println!(
        "\nground truth: {} true positive(s), {} false positive(s), {} missed",
        score.true_positives, score.false_positives, score.missed_leaks
    );
    assert_eq!(score.missed_leaks, 0);

    // Dynamic demonstration: execute the transaction loop and measure the
    // number of loop-created objects still pinned by outside objects.
    println!("\nexecuting 200 transactions to demonstrate the leak...");
    let exec = run(
        &unit.program,
        Config {
            tracked_loop: Some(unit.checked_loops[0]),
            nondet: NonDetPolicy::Always(true),
            max_tracked_iterations: Some(200),
            ..Config::default()
        },
    )
    .expect("subject executes");
    let curve = heap_growth_curve(&exec, 10);
    println!("escaped-heap curve (objects pinned, per 20-iteration band):");
    for (i, v) in curve.iter().enumerate() {
        println!("  band {:>2}: {:>5} {}", i + 1, v, "#".repeat(*v / 4));
    }
    assert!(
        curve.last().unwrap() > curve.first().unwrap(),
        "the leak must show as monotone growth"
    );
    println!("\nthe curve grows without bound: exactly what the static report predicted.");
}
