//! The type-and-effect system on its own: reproduces the worked example
//! of the paper's Section 3.1 and prints the computed extended-recency
//! abstraction (ERA) per allocation site.
//!
//! ```text
//! cargo run --example era_playground
//! ```
//!
//! Four sites demonstrate all four ERA values:
//! * the holder `b` is created before the loop — `0` (outside);
//! * `c` never leaves its iteration — `c` (iteration-local);
//! * `d` escapes into `b.g` and is read back every iteration — `f`;
//! * `e` escapes into `d.h` but is read back only on one branch — `T`,
//!   the leak signature.

use leakchecker_callgraph::{Algorithm, CallGraph};
use leakchecker_effects::{analyze, EffectConfig};
use leakchecker_ir::AllocSite;

const PROGRAM: &str = r#"
class O1 { O3 g; }
class O3 { O4 h; }
class O4 { }
class O2 { }

class Main {
    static void main() {
        O1 b = new O1();
        @check while (nondet()) {
            O2 c = new O2();
            O3 d = new O3();
            O4 e = new O4();
            O3 m = b.g;
            if (nondet()) {
                if (m != null) {
                    O4 n = m.h;
                }
            }
            if (nondet()) {
                b.g = d;
                d.h = e;
            }
        }
    }
}
"#;

fn main() {
    let unit = leakchecker_frontend::compile(PROGRAM).expect("program compiles");
    let cg = CallGraph::build(&unit.program, Algorithm::Rta);
    let summary = analyze(
        &unit.program,
        &cg,
        unit.checked_loops[0],
        EffectConfig::default(),
    );

    println!("extended recency abstraction per allocation site:\n");
    for (i, alloc) in unit.program.allocs().iter().enumerate() {
        let site = AllocSite::from_index(i);
        let era = summary.era(site);
        println!(
            "  {:<10} {:<12} ERA = {}",
            site.to_string(),
            alloc.describe,
            era
        );
    }

    println!("\nabstract store effects (Ψ̃) recorded under the loop:");
    for e in summary.stores.iter().filter(|e| e.inside_loop) {
        println!(
            "  {} ▷_{} {:?}",
            e.value,
            unit.program.field(e.field).name,
            e.base
        );
    }
    println!("\nabstract load effects (Ω̃) recorded under the loop:");
    for e in summary.loads.iter().filter(|e| e.inside_loop) {
        println!(
            "  {} ◁_{} {:?}",
            e.value,
            unit.program.field(e.field).name,
            e.base
        );
    }

    // The classification the paper's Section 3.1 derives.
    let era_of = |name: &str| {
        unit.program
            .allocs()
            .iter()
            .enumerate()
            .find(|(_, a)| a.describe == format!("new {name}"))
            .map(|(i, _)| summary.era(AllocSite::from_index(i)))
            .expect("site exists")
    };
    assert_eq!(era_of("O1").to_string(), "0");
    assert_eq!(era_of("O2").to_string(), "c");
    assert_eq!(era_of("O3").to_string(), "f");
    assert_eq!(era_of("O4").to_string(), "T");
    println!("\nclassification matches the paper's worked example: 0, c, f, T.");
}
