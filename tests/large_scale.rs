//! Contract tests for the large-program generator and the parallel
//! engine at scale: generation is a pure function of its config, the
//! realized statement count lands near the target, and a ≥100k-statement
//! subject produces byte-identical reports at any worker width.

use leakchecker::{check, render_all, CheckTarget, DetectorConfig};
use leakchecker_benchsuite::{generate_large, score, HandlerKind, LargeConfig};

#[test]
fn large_generation_is_seed_deterministic() {
    let config = LargeConfig {
        target_statements: 30_000,
        ..LargeConfig::default()
    };
    let a = generate_large(config);
    let b = generate_large(config);
    assert_eq!(a.source, b.source, "same config must be byte-identical");
    assert_eq!(a.kinds, b.kinds);

    let other = generate_large(LargeConfig {
        seed: config.seed ^ 0xDEAD,
        ..config
    });
    assert_ne!(a.source, other.source, "the seed must matter");
    assert_eq!(a.kinds.len(), other.kinds.len(), "but not the calibration");
}

#[test]
fn large_generation_hits_the_statement_target() {
    let target = 20_000;
    let generated = generate_large(LargeConfig {
        target_statements: target,
        ..LargeConfig::default()
    });
    assert!(
        generated.kinds.len() >= 100,
        "a 20k-statement subject should have many handler loops, got {}",
        generated.kinds.len()
    );
    assert!(generated.planted_leaks() > 0, "no leaks planted");
    assert!(
        generated.kinds.contains(&HandlerKind::CarryOver),
        "no carry-over handlers planted"
    );

    let unit = leakchecker_frontend::compile(&generated.source).expect("large subject compiles");
    leakchecker_ir::validate::assert_valid(&unit.program);
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .expect("large subject analyzes");
    let realized = result.stats.statements;
    assert!(
        realized >= target * 3 / 4 && realized <= target * 3 / 2,
        "calibration drifted: target {target}, realized {realized}"
    );

    // Ground truth holds at scale: every planted leak found, every
    // healthy handler quiet.
    let s = score(&result.program, &result);
    assert_eq!(s.true_positives, generated.planted_leaks());
    assert_eq!(s.missed_leaks, 0, "planted leaks missed");
    assert_eq!(
        s.false_positives, 0,
        "healthy handlers reported: {:?}",
        s.fp_causes
    );
}

#[test]
fn reports_are_byte_identical_across_widths_at_100k_statements() {
    let generated = generate_large(LargeConfig {
        target_statements: 100_000,
        ..LargeConfig::default()
    });
    let unit = leakchecker_frontend::compile(&generated.source).expect("large subject compiles");
    let target = CheckTarget::Loop(unit.checked_loops[0]);
    let run = |jobs: usize| {
        let config = DetectorConfig {
            jobs,
            ..DetectorConfig::default()
        };
        check(&unit.program, target, config).expect("large subject analyzes")
    };
    let seq = run(1);
    assert!(
        seq.stats.statements >= 100_000 * 4 / 5,
        "subject too small for the contract: {} statements",
        seq.stats.statements
    );
    let par = run(8);
    assert_eq!(
        render_all(&seq.program, &seq.reports),
        render_all(&par.program, &par.reports),
        "jobs=8 diverged from sequential on the 100k-statement subject"
    );
    assert_eq!(seq.stats.leaking_sites, par.stats.leaking_sites);
    assert_eq!(seq.stats.flow_edges, par.stats.flow_edges);
    assert_eq!(seq.stats.candidate_sites, par.stats.candidate_sites);
    assert_eq!(seq.stats.batched_queries, par.stats.batched_queries);
    assert_eq!(seq.stats.degraded_reports, par.stats.degraded_reports);
}
