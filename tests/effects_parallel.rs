//! Determinism battery for the parallel (Jacobi) effects fixpoint.
//!
//! The claim under test is strong: the parallel rounds reproduce the
//! sequential abstract interpretation *exactly* — the same
//! `EffectSummary` field for field (eras, effect sets, truncation, even
//! the iteration count), not merely the same reports downstream. The
//! battery compares `analyze` directly at jobs ∈ {1, 2, 8} across the
//! committed corpus exemplars, several large generated subjects, and a
//! 200-seed fuzz-grammar sweep, then pins the two deliberate sequential
//! fallbacks (witnesses on, faults injected) end to end through `check`.
//!
//! `analyze` is exercised directly (not through the fuzz oracle or the
//! detector) because both of those force witnesses on some paths, which
//! would silently pin the sequential fallback and turn the whole battery
//! into a no-op.

use leakchecker::governor::{parse_fault_plan, GovernorConfig};
use leakchecker::{check, render_all, CheckTarget, DetectorConfig};
use leakchecker_benchsuite::{generate_fuzz, generate_large, LargeConfig};
use leakchecker_callgraph::{Algorithm, CallGraph};
use leakchecker_effects::{analyze, EffectConfig, EffectSummary};
use leakchecker_fuzz::parse_entry;

/// Everything observable about a summary except `regions`, which is
/// jobs-dependent telemetry by design. `eras` is a `HashMap`, so it is
/// rendered in sorted order.
fn fingerprint(summary: &EffectSummary) -> String {
    let EffectSummary {
        eras,
        stores,
        loads,
        inside_sites,
        returned_from_library,
        started_threads,
        truncated,
        rounds,
        regions: _,
    } = summary;
    let mut sorted_eras: Vec<_> = eras.iter().collect();
    sorted_eras.sort();
    format!(
        "eras={sorted_eras:?}\nstores={stores:?}\nloads={loads:?}\n\
         inside={inside_sites:?}\nlib={returned_from_library:?}\n\
         threads={started_threads:?}\ntruncated={truncated}\nrounds={rounds}"
    )
}

/// Analyzes `source` at the given width and returns the summary.
fn analyze_at(source: &str, jobs: usize) -> EffectSummary {
    let unit = leakchecker_frontend::compile(source).expect("subject compiles");
    let cg = CallGraph::build(&unit.program, Algorithm::Rta);
    assert!(
        !unit.checked_loops.is_empty(),
        "battery subject has no @check loop"
    );
    analyze(
        &unit.program,
        &cg,
        unit.checked_loops[0],
        EffectConfig {
            jobs,
            ..EffectConfig::default()
        },
    )
}

/// Asserts jobs ∈ {2, 8} reproduce the sequential summary exactly.
/// Returns the widest summary so callers can inspect its telemetry.
fn assert_equivalent(label: &str, source: &str) -> EffectSummary {
    let sequential = analyze_at(source, 1);
    assert_eq!(
        sequential.regions, 0,
        "{label}: the sequential path must not partition"
    );
    let expected = fingerprint(&sequential);
    let mut widest = sequential;
    for jobs in [2, 8] {
        let parallel = analyze_at(source, jobs);
        assert_eq!(
            expected,
            fingerprint(&parallel),
            "{label}: jobs={jobs} diverged from sequential"
        );
        if jobs == 8 {
            widest = parallel;
        }
    }
    widest
}

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_exemplars_are_width_independent() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jml"))
        .collect();
    paths.sort();
    assert!(!paths.is_empty(), "tests/corpus holds no .jml entries");
    for path in paths {
        let text = std::fs::read_to_string(&path).expect("corpus entry reads");
        let entry = parse_entry(&text).expect("corpus entry parses");
        assert_equivalent(&path.display().to_string(), &entry.source);
    }
}

#[test]
fn large_subjects_are_width_independent_and_actually_partition() {
    for seed in [0x1A26E, 0xB0B0, 0x5EED5] {
        let generated = generate_large(LargeConfig {
            target_statements: 9_000,
            seed,
            ..LargeConfig::default()
        });
        let widest =
            assert_equivalent(&format!("generate_large seed {seed:#x}"), &generated.source);
        // The ≥2× acceptance criterion is impossible if the partitioner
        // degenerates to one region, so lock the width here: the
        // generated event loop must split into several independent
        // handler/bucket regions.
        assert!(
            widest.regions >= 2,
            "generate_large seed {seed:#x}: expected a real partition, got {} regions",
            widest.regions
        );
        assert!(widest.rounds > 0, "no abstract iterations ran");
    }
}

#[test]
fn fuzz_grammar_sweep_is_width_independent() {
    let mut partitioned = 0usize;
    for seed in 0..200u64 {
        let generated = generate_fuzz(seed);
        let widest = assert_equivalent(&format!("generate_fuzz seed {seed}"), &generated.source);
        if widest.regions >= 2 {
            partitioned += 1;
        }
    }
    // Not every tiny fuzz program has independent handlers, but a sweep
    // where none partitions means the parallel path never ran and the
    // battery proved nothing.
    assert!(
        partitioned > 0,
        "no fuzz subject exercised the parallel path"
    );
}

/// The two deliberate sequential fallbacks, pinned end to end: a run
/// with witnesses on or faults injected must take the sequential
/// effects path (`effects_regions == 0`) at any job count, and its
/// reports must be byte-identical to the fully sequential run's.
#[test]
fn witnesses_and_faults_pin_the_sequential_fallback() {
    let generated = generate_large(LargeConfig {
        target_statements: 4_000,
        ..LargeConfig::default()
    });
    let unit = leakchecker_frontend::compile(&generated.source).expect("subject compiles");
    let target = CheckTarget::Loop(unit.checked_loops[0]);
    let run = |jobs: usize, witnesses: bool, inject: Option<&str>| {
        let faults = inject
            .map(|spec| parse_fault_plan(spec).expect("fault plan parses"))
            .unwrap_or_default();
        let config = DetectorConfig {
            jobs,
            witnesses,
            governor: GovernorConfig {
                faults,
                ..GovernorConfig::default()
            },
            ..DetectorConfig::default()
        };
        check(&unit.program, target, config).expect("subject analyzes")
    };

    // Baseline: the plain parallel run does partition.
    let plain = run(8, false, None);
    assert!(
        plain.stats.effects_regions >= 2,
        "baseline must exercise the parallel effects path"
    );

    // Witness recording pins the fallback…
    let with_witnesses = run(8, true, None);
    assert_eq!(with_witnesses.stats.effects_regions, 0);
    let seq_witnesses = run(1, true, None);
    assert_eq!(
        render_all(&seq_witnesses.program, &seq_witnesses.reports),
        render_all(&with_witnesses.program, &with_witnesses.reports),
        "witness run diverged across widths"
    );

    // …and so does active fault injection, with byte-identical reports
    // and identical governance counters across widths.
    let inject = Some("exhaust@2,panic@4");
    let seq = run(1, false, inject);
    let par = run(8, false, inject);
    assert_eq!(par.stats.effects_regions, 0);
    assert_eq!(seq.stats.effects_regions, 0);
    assert_eq!(
        render_all(&seq.program, &seq.reports),
        render_all(&par.program, &par.reports),
        "fault-injected run diverged across widths"
    );
    assert_eq!(seq.stats.effects_rounds, par.stats.effects_rounds);
    assert_eq!(seq.stats.quarantined, par.stats.quarantined);

    // The plain parallel run still matches the plain sequential run —
    // the fallback is an extra safety net, not the only reason the
    // reports agree.
    let seq_plain = run(1, false, None);
    assert_eq!(
        render_all(&seq_plain.program, &seq_plain.reports),
        render_all(&plain.program, &plain.reports)
    );
    assert_eq!(seq_plain.stats.effects_rounds, plain.stats.effects_rounds);
}
