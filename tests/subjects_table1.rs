//! Integration tests pinning the Table 1 reproduction: every subject's
//! detector run must find all planted leaks, exhibit the case study's
//! false-positive causes, and keep the summary statistics sane.

use leakchecker::check;
use leakchecker_benchsuite::{all_subjects, by_name, evaluate};

#[test]
fn every_subject_finds_all_leaks_with_no_misses() {
    for subject in all_subjects() {
        let unit = subject.compile();
        let result = check(
            &unit.program,
            subject.target(&unit),
            subject.detector_config(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", subject.name));
        let score = evaluate::score(&result.program, &result);
        assert_eq!(score.missed_leaks, 0, "{} missed leaks", subject.name);
        assert!(score.true_positives > 0, "{} found nothing", subject.name);
        assert!(result.stats.methods > 0);
        assert!(result.stats.loop_objects > 0, "{} LO = 0", subject.name);
        assert!(
            result.stats.leaking_sites >= result.reports.len(),
            "{}: LS must weight contexts",
            subject.name
        );
    }
}

#[test]
fn average_fpr_is_in_the_practical_band() {
    // The paper reports 49.8% average FPR and argues that is practical.
    // The reproduction must land in the same band — far below "useless"
    // (>90%) and nonzero (the FP causes are modeled on purpose).
    let mut total = 0.0;
    let mut n = 0usize;
    for subject in all_subjects() {
        let unit = subject.compile();
        let result = check(
            &unit.program,
            subject.target(&unit),
            subject.detector_config(),
        )
        .unwrap();
        let score = evaluate::score(&result.program, &result);
        total += score.fpr();
        n += 1;
    }
    let avg = total / n as f64;
    assert!(avg > 0.2 && avg < 0.8, "average FPR {avg} out of band");
}

#[test]
fn derby_reports_resultsets_not_sections_as_leaks() {
    let subject = by_name("derby").unwrap();
    let unit = subject.compile();
    let result = check(
        &unit.program,
        subject.target(&unit),
        subject.detector_config(),
    )
    .unwrap();
    let names: Vec<String> = result.reports.iter().map(|r| r.describe.clone()).collect();
    assert!(
        names.contains(&"new ResultSet".to_string()),
        "ResultSet is the Derby leak: {names:?}"
    );
    // Sections appear in the report (the paper's FPs) but are labeled.
    let score = evaluate::score(&result.program, &result);
    assert!(
        score.fp_causes.contains_key("singleton"),
        "{:?}",
        score.fp_causes
    );
}

#[test]
fn eclipse_diff_region_finds_history_entries() {
    let subject = by_name("eclipse-diff").unwrap();
    let unit = subject.compile();
    let result = check(
        &unit.program,
        subject.target(&unit),
        subject.detector_config(),
    )
    .unwrap();
    let names: Vec<String> = result.reports.iter().map(|r| r.describe.clone()).collect();
    assert!(names.contains(&"new HistoryEntry".to_string()), "{names:?}");
    let score = evaluate::score(&result.program, &result);
    assert_eq!(
        score.fp_causes.get("gui-temporary").copied().unwrap_or(0),
        3,
        "three GUI temporaries as in the case study: {:?}",
        score.fp_causes
    );
}

#[test]
fn specjbb_contexts_distinguish_transaction_types() {
    let subject = by_name("specjbb").unwrap();
    let unit = subject.compile();
    let result = check(
        &unit.program,
        subject.target(&unit),
        subject.detector_config(),
    )
    .unwrap();
    // The OrderNode report carries the calling context through
    // recordOrder — the information the case study used to identify the
    // implicated transaction type.
    let node_report = result
        .reports
        .iter()
        .find(|r| r.describe == "new OrderNode")
        .expect("OrderNode reported");
    assert!(
        !node_report.contexts.is_empty(),
        "calling contexts must be attached"
    );
}

#[test]
fn subjects_execute_under_the_interpreter() {
    // Every loop-based subject must actually run (the models are real
    // programs, not just analysis fodder).
    use leakchecker_interp::{run, Config, NonDetPolicy};
    for subject in all_subjects() {
        if subject.uses_region {
            continue; // region subjects have no driving main loop
        }
        let unit = subject.compile();
        let exec = run(
            &unit.program,
            Config {
                tracked_loop: Some(unit.checked_loops[0]),
                nondet: NonDetPolicy::Always(true),
                max_tracked_iterations: Some(25),
                ..Config::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} failed to execute: {e}", subject.name));
        assert_eq!(exec.iterations, 25, "{}", subject.name);
    }
}

#[test]
fn leaky_subjects_show_concrete_heap_growth() {
    use leakchecker_dynbaseline::heap_growth_curve;
    use leakchecker_interp::{run, Config, NonDetPolicy};
    for name in ["specjbb", "log4j", "derby", "mysql-connectorj"] {
        let subject = by_name(name).unwrap();
        let unit = subject.compile();
        let exec = run(
            &unit.program,
            Config {
                tracked_loop: Some(unit.checked_loops[0]),
                nondet: NonDetPolicy::Always(true),
                max_tracked_iterations: Some(60),
                ..Config::default()
            },
        )
        .unwrap();
        let curve = heap_growth_curve(&exec, 6);
        assert!(
            curve.last().unwrap() > curve.first().unwrap(),
            "{name}: escaped heap must grow: {curve:?}"
        );
    }
}
