//! End-to-end verification of the degradation ladder: under injected
//! faults (forced budget exhaustion, worker panics, virtual deadline
//! expiry) the detector must stay *sound* — every known leak still
//! covered — and *deterministic* — byte-identical output at any
//! `jobs` width — while tagging the affected evidence `Degraded`.

use leakchecker::governor::{Confidence, GovernorConfig};
use leakchecker::{check, parse_fault_plan, render_all, CheckTarget, DetectorConfig};
use leakchecker_benchsuite::{all_subjects, evaluate};
use leakchecker_fuzz::{render_campaign_json, run_campaign, FuzzConfig};

/// Runs `f` with the default panic hook silenced, so intentionally
/// injected worker panics don't spam the test output.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(hook);
    out
}

/// A detector configuration that forces every refinement query onto the
/// Andersen fallback rung and panics the worker of the first item.
fn faulted_config(jobs: usize) -> DetectorConfig {
    let mut governor = GovernorConfig {
        max_retries: 0,
        ..GovernorConfig::default()
    };
    governor.faults = parse_fault_plan("exhaust@0,panic@1").unwrap();
    governor.faults.exhaust_all = true;
    DetectorConfig {
        jobs,
        governor,
        ..DetectorConfig::default()
    }
}

#[test]
fn injected_faults_never_lose_a_known_leak_on_any_subject() {
    with_quiet_panics(|| {
        for subject in all_subjects() {
            let unit = subject.compile();
            let config = DetectorConfig {
                governor: faulted_config(1).governor,
                ..subject.detector_config()
            };
            let result = check(&unit.program, subject.target(&unit), config)
                .unwrap_or_else(|e| panic!("{}: {e}", subject.name));
            let score = evaluate::score(&result.program, &result);
            assert_eq!(
                score.missed_leaks, 0,
                "{}: the degraded run dropped a known leak",
                subject.name
            );
            assert!(
                result.stats.is_degraded() || result.stats.candidate_sites == 0,
                "{}: exhaust-all must register degradation when queries ran",
                subject.name
            );
        }
    });
}

#[test]
fn faulted_reports_are_identical_across_jobs_and_carry_causes() {
    with_quiet_panics(|| {
        for subject in all_subjects() {
            let unit = subject.compile();
            let run = |jobs: usize| {
                let config = DetectorConfig {
                    governor: faulted_config(jobs).governor,
                    jobs,
                    ..subject.detector_config()
                };
                check(&unit.program, subject.target(&unit), config)
                    .unwrap_or_else(|e| panic!("{}: {e}", subject.name))
            };
            let sequential = run(1);
            let baseline = render_all(&sequential.program, &sequential.reports);
            for report in &sequential.reports {
                if let Confidence::Degraded { cause } = report.confidence {
                    let rendered = report.render(&sequential.program);
                    assert!(
                        rendered.contains(&format!("degraded: {cause}")),
                        "{}: degraded report hides its cause: {rendered}",
                        subject.name
                    );
                }
            }
            for jobs in [2, 8] {
                let parallel = run(jobs);
                assert_eq!(
                    baseline,
                    render_all(&parallel.program, &parallel.reports),
                    "{}: jobs={jobs} diverged under injected faults",
                    subject.name
                );
                assert_eq!(
                    sequential.stats.fallbacks, parallel.stats.fallbacks,
                    "{}: fallback count must not depend on jobs",
                    subject.name
                );
                assert_eq!(
                    sequential.stats.quarantined, parallel.stats.quarantined,
                    "{}: quarantine count must not depend on jobs",
                    subject.name
                );
            }
        }
    });
}

#[test]
fn injected_campaign_is_sound_and_byte_deterministic() {
    let base = FuzzConfig {
        seeds: 20,
        base_seed: 0xFA117,
        jobs: 1,
        governor: GovernorConfig {
            faults: parse_fault_plan("exhaust@4,panic@9,deadline@15").unwrap(),
            ..GovernorConfig::default()
        },
        ..FuzzConfig::default()
    };
    let renders: Vec<String> = with_quiet_panics(|| {
        [1usize, 2, 8]
            .iter()
            .map(|&jobs| {
                let campaign = run_campaign(&FuzzConfig { jobs, ..base });
                assert!(
                    campaign.violations.is_empty(),
                    "jobs={jobs}: injected faults cost soundness: {:?}",
                    campaign
                        .violations
                        .iter()
                        .map(|v| (v.verdict.seed, v.verdict.missed.clone()))
                        .collect::<Vec<_>>()
                );
                assert!(campaign.errors.is_empty(), "{:?}", campaign.errors);
                assert_eq!(
                    campaign.quarantined_seeds,
                    vec![base.base_seed + 9],
                    "jobs={jobs}"
                );
                assert!(campaign.degraded_runs > 0, "jobs={jobs}");
                render_campaign_json(&campaign)
            })
            .collect()
    });
    assert_eq!(renders[0], renders[1], "jobs=2 JSON diverged");
    assert_eq!(renders[0], renders[2], "jobs=8 JSON diverged");
}

#[test]
fn virtual_deadline_expiry_degrades_without_cancelling_determinism() {
    let program = "class Item { }
         class Holder { Item item; }
         class Main {
           static void main() {
             Holder h = new Holder();
             @check while (nondet()) {
               Item it = new Item();
               h.item = it;
             }
           }
         }";
    let unit = leakchecker_frontend::compile(program).unwrap();
    let run = |jobs: usize| {
        let mut governor = GovernorConfig::default();
        governor.faults.deadline_at_item = Some(0);
        check(
            &unit.program,
            CheckTarget::Loop(unit.checked_loops[0]),
            DetectorConfig {
                jobs,
                governor,
                ..DetectorConfig::default()
            },
        )
        .unwrap()
    };
    let sequential = run(1);
    assert_eq!(sequential.reports.len(), 1, "the leak survives expiry");
    assert!(sequential.stats.deadline_hits > 0);
    assert_eq!(
        sequential.reports[0]
            .confidence
            .cause()
            .map(|c| c.to_string()),
        Some("deadline-expired".to_string())
    );
    for jobs in [2, 8] {
        let parallel = run(jobs);
        assert_eq!(
            render_all(&sequential.program, &sequential.reports),
            render_all(&parallel.program, &parallel.reports),
            "jobs={jobs}"
        );
    }
}
