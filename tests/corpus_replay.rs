//! Regression lock for the fuzzing corpus.
//!
//! Every `.jml` file under `tests/corpus/` is a self-describing corpus
//! entry (see `leakchecker_fuzz::corpus`): a generated program plus the
//! verdict the differential oracle recorded when the entry was
//! committed. This test recompiles each *stored* source through the
//! static detector, the concrete interpreter, and the dynamic baseline,
//! and asserts the fresh verdict line matches the recorded one. A
//! detector or oracle change that flips any corpus verdict fails here
//! with the seed and kinds needed to reproduce it via
//! `leakc fuzz --seed <s> --seeds 1`.

use leakchecker_fuzz::{parse_entry, replay};

fn corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_corpus_entry_replays_to_its_recorded_verdict() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus must exist")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "jml"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "tests/corpus holds no .jml entries; the corpus seed step was skipped"
    );

    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let entry = parse_entry(&text)
            .unwrap_or_else(|e| panic!("malformed corpus entry {}: {e}", path.display()));
        let fresh = replay(&entry).unwrap_or_else(|e| {
            panic!(
                "{}: replay failed (seed {} kinds {:?}): {e}",
                path.display(),
                entry.seed,
                entry.kinds
            )
        });
        assert_eq!(
            fresh.verdict_line(),
            entry.verdict,
            "{}: verdict drifted (seed {} kinds {:?}); reproduce with `leakc fuzz --seed {} --seeds 1`",
            path.display(),
            entry.seed,
            entry.kinds,
            entry.seed
        );
    }
}

/// Locks the degraded-report output format. The `degraded-andersen`
/// exemplar records a verdict under `query-budget: 1` / `max-retries: 0`,
/// which forces every demand query onto the Andersen fallback; the
/// rendered report must carry the `(degraded: <cause>)` tag so operators
/// can tell a full-precision report from a budget-starved one.
#[test]
fn degraded_exemplar_renders_the_degraded_tag() {
    let path = corpus_dir().join("exemplar-degraded-andersen.jml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let entry = parse_entry(&text).expect("well-formed degraded exemplar");
    assert_eq!(entry.query_budget, Some(1));
    assert_eq!(entry.max_retries, Some(0));
    assert!(
        entry.verdict.contains(" degraded="),
        "recorded verdict must carry the degraded count: {}",
        entry.verdict
    );

    let unit = leakchecker_frontend::compile(&entry.source).expect("exemplar compiles");
    let target = *unit
        .checked_loops
        .first()
        .expect("exemplar has a @check loop");
    let result = leakchecker::check(
        &unit.program,
        leakchecker::CheckTarget::Loop(target),
        leakchecker::DetectorConfig {
            governor: leakchecker::GovernorConfig {
                query_budget: 1,
                max_retries: 0,
                ..leakchecker::GovernorConfig::default()
            },
            ..leakchecker::DetectorConfig::default()
        },
    )
    .expect("detector runs");
    let rendered = leakchecker::render_all(&result.program, &result.reports);
    assert!(
        rendered.contains("(degraded: budget-exhausted)"),
        "starved run must render the degraded tag:\n{rendered}"
    );
    assert!(
        result.stats.is_degraded(),
        "run stats must record degradation"
    );
}

#[test]
fn corpus_covers_every_grammar_kind() {
    let mut seen = std::collections::BTreeSet::new();
    for entry in std::fs::read_dir(corpus_dir()).expect("tests/corpus must exist") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|ext| ext != "jml") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable corpus entry");
        let parsed = parse_entry(&text).expect("well-formed corpus entry");
        for kind in parsed.kinds {
            seen.insert(kind.label());
        }
    }
    for label in [
        "leak",
        "carry-over",
        "local",
        "cond-escape",
        "cond-carry",
        "library-store",
        "library-carry",
        "double-edge",
    ] {
        assert!(seen.contains(label), "no corpus entry exercises `{label}`");
    }
    assert!(
        seen.iter().any(|l| l.starts_with("alias-chain-")),
        "no corpus entry exercises alias chains"
    );
    assert!(
        seen.iter().any(|l| l.starts_with("nested-loop-")),
        "no corpus entry exercises nested loops"
    );
    assert!(
        seen.iter().any(|l| l.starts_with("recursive-escape-")),
        "no corpus entry exercises recursion"
    );
}
