//! Differential soundness tests: the static pipeline against the
//! concrete interpreter's ground truth (Definition 1) on generated
//! programs.
//!
//! The paper claims its *first phase* is sound — every object that flows
//! out of / into a loop through an outside object is correctly
//! classified — while the flows-matching second phase is deliberately
//! unsound. The checkable consequence: on programs whose leaks follow the
//! sustained pattern (stored every iteration, never read back), the
//! detector must cover every concretely leaking site.

use leakchecker::{check, CheckTarget, DetectorConfig};
use leakchecker_benchsuite::{generate, GenConfig, SplitMix64};
use leakchecker_interp::{compute_ground_truth, run, Config, NonDetPolicy};

/// Runs a generated program, computes Definition-1 ground truth, and
/// checks the static detector covers every concretely leaking site.
fn static_covers_concrete(seed: u64, handlers: usize, leak_percent: u8) {
    let generated = generate(GenConfig {
        handlers,
        leak_percent,
        padding_methods: 1,
        seed,
    });
    let unit = leakchecker_frontend::compile(&generated.source).expect("generated compiles");

    // Concrete ground truth over a long run.
    let exec = run(
        &unit.program,
        Config {
            tracked_loop: Some(unit.checked_loops[0]),
            nondet: NonDetPolicy::Always(true),
            max_tracked_iterations: Some((handlers * 6) as u64),
            ..Config::default()
        },
    )
    .expect("generated program executes");
    let gt = compute_ground_truth(&exec.heap, &exec.effects);

    // Static detection.
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .expect("analysis runs");
    let mut covered = result.reported_sites();
    for &root in &result.reported_sites() {
        covered.extend(result.flows.members_of(root));
    }

    for site in gt.leaked_sites() {
        // Sustained leaks only: a site with a single stuck instance (the
        // carry-over tail) is not the pattern the tool targets.
        if gt.instances_of(site) < 3 {
            continue;
        }
        assert!(
            covered.contains(&site),
            "seed {seed}: site {site} leaks concretely \
             ({} instances) but is not covered statically",
            gt.instances_of(site)
        );
    }
}

#[test]
fn static_covers_concrete_fixed_seeds() {
    for seed in [3, 17, 91, 2024] {
        static_covers_concrete(seed, 12, 40);
    }
}

/// Phase-1 soundness on random generated programs, over a deterministic
/// sweep of generator parameters.
#[test]
fn static_covers_concrete_random() {
    let mut rng = SplitMix64::new(0x5EED_0002);
    for _ in 0..16 {
        let seed = rng.gen_range(0, 10_000);
        let handlers = rng.gen_range(3, 15) as usize;
        let leak_percent = rng.gen_range(10, 70) as u8;
        static_covers_concrete(seed, handlers, leak_percent);
    }
}

/// The detector never reports an iteration-local handler's payload:
/// generated `Local` handlers must stay quiet.
#[test]
fn local_handlers_never_reported() {
    let mut rng = SplitMix64::new(0x5EED_0003);
    for _ in 0..16 {
        let seed = rng.gen_range(0, 10_000);
        let generated = generate(GenConfig {
            handlers: 8,
            leak_percent: 0,
            padding_methods: 0,
            seed,
        });
        let unit = leakchecker_frontend::compile(&generated.source).unwrap();
        let result = check(
            &unit.program,
            CheckTarget::Loop(unit.checked_loops[0]),
            DetectorConfig::default(),
        )
        .unwrap();
        // leak_percent 0 → only CarryOver and Local handlers → no reports.
        assert!(
            result.reports.is_empty(),
            "seed {seed}: healthy program reported: {:?}",
            result
                .reports
                .iter()
                .map(|r| r.describe.clone())
                .collect::<Vec<_>>()
        );
    }
}
