//! Differential soundness tests: the static pipeline against the
//! concrete interpreter's ground truth (Definition 1) on generated
//! programs.
//!
//! The paper claims its *first phase* is sound — every object that flows
//! out of / into a loop through an outside object is correctly
//! classified — while the flows-matching second phase is deliberately
//! unsound. The checkable consequence: on programs whose leaks follow the
//! sustained pattern (stored every iteration, never read back), the
//! detector must cover every concretely leaking site.

use leakchecker::{check, CheckTarget, DetectorConfig};
use leakchecker_benchsuite::{generate, GenConfig};
use leakchecker_interp::{compute_ground_truth, run, Config, NonDetPolicy};
use proptest::prelude::*;

/// Runs a generated program, computes Definition-1 ground truth, and
/// checks the static detector covers every concretely leaking site.
fn static_covers_concrete(seed: u64, handlers: usize, leak_percent: u8) {
    let generated = generate(GenConfig {
        handlers,
        leak_percent,
        padding_methods: 1,
        seed,
    });
    let unit = leakchecker_frontend::compile(&generated.source).expect("generated compiles");

    // Concrete ground truth over a long run.
    let exec = run(
        &unit.program,
        Config {
            tracked_loop: Some(unit.checked_loops[0]),
            nondet: NonDetPolicy::Always(true),
            max_tracked_iterations: Some((handlers * 6) as u64),
            ..Config::default()
        },
    )
    .expect("generated program executes");
    let gt = compute_ground_truth(&exec.heap, &exec.effects);

    // Static detection.
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .expect("analysis runs");
    let mut covered = result.reported_sites();
    for &root in &result.reported_sites() {
        covered.extend(result.flows.members_of(root));
    }

    for site in gt.leaked_sites() {
        // Sustained leaks only: a site with a single stuck instance (the
        // carry-over tail) is not the pattern the tool targets.
        if gt.instances_of(site) < 3 {
            continue;
        }
        assert!(
            covered.contains(&site),
            "seed {seed}: site {site} leaks concretely \
             ({} instances) but is not covered statically",
            gt.instances_of(site)
        );
    }
}

#[test]
fn static_covers_concrete_fixed_seeds() {
    for seed in [3, 17, 91, 2024] {
        static_covers_concrete(seed, 12, 40);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Phase-1 soundness on random generated programs.
    #[test]
    fn static_covers_concrete_random(
        seed in 0u64..10_000,
        handlers in 3usize..15,
        leak_percent in 10u8..70,
    ) {
        static_covers_concrete(seed, handlers, leak_percent);
    }

    /// The detector never reports an iteration-local handler's payload:
    /// generated `Local` handlers must stay quiet.
    #[test]
    fn local_handlers_never_reported(seed in 0u64..10_000) {
        let generated = generate(GenConfig {
            handlers: 8,
            leak_percent: 0,
            padding_methods: 0,
            seed,
        });
        let unit = leakchecker_frontend::compile(&generated.source).unwrap();
        let result = check(
            &unit.program,
            CheckTarget::Loop(unit.checked_loops[0]),
            DetectorConfig::default(),
        )
        .unwrap();
        // leak_percent 0 → only CarryOver and Local handlers → no reports.
        prop_assert!(
            result.reports.is_empty(),
            "healthy program reported: {:?}",
            result.reports.iter().map(|r| r.describe.clone()).collect::<Vec<_>>()
        );
    }
}
