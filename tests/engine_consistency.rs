//! Consistency tests across the analysis engines on the real subjects:
//! the formal bound-1 domain vs the default set domain, the effects
//! engine vs the concrete interpreter, and the points-to engines against
//! each other.

use leakchecker::{check, DetectorConfig};
use leakchecker_benchsuite::{all_subjects, evaluate};
use leakchecker_callgraph::{Algorithm, CallGraph};
use leakchecker_effects::EffectConfig;
use leakchecker_pointsto::{Andersen, Context, DemandConfig, DemandPointsTo, Node, Pag};

/// The paper-exact single-site-or-⊤ domain must not *miss* leaks the set
/// domain finds (it collapses to ⊤ and over-reports instead).
#[test]
fn bound1_domain_is_no_less_conservative() {
    for subject in all_subjects() {
        let unit = subject.compile();
        let default_cfg = subject.detector_config();
        let mut bound1_cfg = subject.detector_config();
        bound1_cfg.effects = EffectConfig {
            type_set_bound: 1,
            ..bound1_cfg.effects
        };
        let default_run = check(&unit.program, subject.target(&unit), default_cfg).unwrap();
        let bound1_run = check(&unit.program, subject.target(&unit), bound1_cfg).unwrap();
        let s_default = evaluate::score(&default_run.program, &default_run);
        let s_bound1 = evaluate::score(&bound1_run.program, &bound1_run);
        assert_eq!(
            s_bound1.missed_leaks, 0,
            "{}: the formal domain missed leaks (default missed {})",
            subject.name, s_default.missed_leaks
        );
        // Collapsing can only add reports, never shrink them below the
        // set-domain's true-positive coverage.
        assert!(
            s_bound1.true_positives + s_bound1.reported_sites >= s_default.true_positives,
            "{}: bound-1 lost coverage",
            subject.name
        );
    }
}

/// Demand-driven points-to answers are contained in Andersen's on every
/// local of every subject's entry method (stripping contexts).
#[test]
fn demand_within_andersen_on_subjects() {
    for subject in all_subjects() {
        if subject.uses_region {
            continue;
        }
        let unit = subject.compile();
        let cg = CallGraph::build(&unit.program, Algorithm::Rta);
        let pag = Pag::build(&unit.program, &cg);
        let andersen = Andersen::run(&unit.program, &pag);
        let engine = DemandPointsTo::new(&unit.program, &pag, DemandConfig::default());
        let entry = unit.program.entry().unwrap();
        let nlocals = unit.program.method(entry).locals.len();
        for i in 0..nlocals {
            let node = Node::Local(entry, leakchecker_ir::LocalId::from_index(i));
            let demand = engine.points_to(node, &Context::empty());
            if !demand.complete {
                continue;
            }
            let exhaustive = andersen.points_to_node(&pag, node);
            for site in demand.sites() {
                assert!(
                    exhaustive.contains(&site),
                    "{}: demand {site} not in Andersen for local {i}",
                    subject.name
                );
            }
        }
    }
}

/// The detector's verdicts are deterministic: two runs agree exactly.
#[test]
fn detection_is_deterministic() {
    for subject in all_subjects() {
        let unit = subject.compile();
        let a = check(
            &unit.program,
            subject.target(&unit),
            subject.detector_config(),
        )
        .unwrap();
        let b = check(
            &unit.program,
            subject.target(&unit),
            subject.detector_config(),
        )
        .unwrap();
        assert_eq!(a.reported_sites(), b.reported_sites(), "{}", subject.name);
        assert_eq!(a.stats.loop_objects, b.stats.loop_objects);
        assert_eq!(a.stats.leaking_sites, b.stats.leaking_sites);
    }
}

/// Raising the inline depth or fixpoint budget never loses true leaks.
#[test]
fn deeper_budgets_preserve_coverage() {
    let subject = leakchecker_benchsuite::by_name("findbugs").unwrap();
    let unit = subject.compile();
    for (depth, iters) in [(4usize, 10usize), (24, 40), (48, 80)] {
        let mut config: DetectorConfig = subject.detector_config();
        config.effects = EffectConfig {
            max_inline_depth: depth,
            max_fixpoint_iters: iters,
            ..config.effects
        };
        let result = check(&unit.program, subject.target(&unit), config).unwrap();
        let score = evaluate::score(&result.program, &result);
        assert_eq!(
            score.missed_leaks, 0,
            "depth {depth} iters {iters} missed leaks"
        );
    }
}
