//! Fleet chaos harness: proves the `leakc route` coordinator masks
//! shard faults without changing a single response byte.
//!
//! The contract under test (DESIGN.md §14): check responses carry no
//! shard identity or timing, and the analysis is deterministic, so a
//! campaign through a router over N shards — one of them being killed,
//! stalled, dropping connections, or tearing frames mid-response —
//! must produce *byte-identical* output to the same campaign against a
//! fault-free single-shard fleet. Every accepted request gets exactly
//! one response; a recovered shard is re-admitted through the
//! breaker's half-open probe.

use leakchecker_bench::chaos::{parse_chaos_plan, ChaosPlan, ChaosProxy};
use leakchecker_cli::protocol::{json_escape, parse_json, Json};
use leakchecker_cli::{RouteOptions, Router, ServeOptions, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// The leaky exemplar; the campaign varies the array size so the
/// routing key (an FNV-1a hash of the source) spreads requests across
/// all shards instead of pinning every check to one replica.
const LEAKY: &str = "\
class Item { int tag; }
class Registry { Item[] slots; int n;
  void put(Item it) { slots[n] = it; n = n + 1; } }
class Main {
  static void main() {
    Registry r = new Registry(); r.slots = new Item[4096];
    @check while (nondet()) { Item it = new Item(); r.put(it); } } }";

const CAMPAIGN_LEN: usize = 24;

/// The deterministic campaign: mostly plain checks over per-index
/// source variants, with a governed check and a malformed line mixed
/// in. No health/stats — those frames legitimately differ between a
/// shard and a router, and between fleet shapes.
fn request_for(index: usize) -> String {
    match index % 8 {
        3 => format!(
            r#"{{"kind": "check", "id": {index}, "source": "{}", "query_budget": 1, "max_retries": 0}}"#,
            json_escape(&variant(index))
        ),
        6 => "this line is not json".to_string(),
        _ => format!(
            r#"{{"kind": "check", "id": {index}, "source": "{}"}}"#,
            json_escape(&variant(index))
        ),
    }
}

fn variant(index: usize) -> String {
    LEAKY.replace("4096", &format!("{}", 4096 + index))
}

/// Strips timing fields (none appear in check responses today, but the
/// comparison must not silently start depending on them).
fn normalize(line: &str) -> String {
    let Ok(Json::Obj(fields)) = parse_json(line) else {
        return line.to_string();
    };
    let rendered: Vec<String> = fields
        .iter()
        .map(|(key, value)| match key.as_str() {
            "uptime_ms" | "phases" => format!("\"{key}\": \"<timing>\""),
            _ => format!("\"{key}\": {}", render(value)),
        })
        .collect();
    format!("{{{}}}", rendered.join(", "))
}

fn render(value: &Json) -> String {
    match value {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => n.to_string(),
        Json::Str(s) => format!("\"{}\"", json_escape(s)),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(", "))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{k}\": {}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(", "))
        }
    }
}

struct Fleet {
    shards: Vec<Server>,
    proxy: Option<ChaosProxy>,
    router: Router,
}

impl Fleet {
    /// `size` shards behind a router; when `plan` is non-empty, shard 0
    /// sits behind a chaos proxy that injects the plan's faults.
    fn start(size: usize, plan: ChaosPlan, hedge_ms: Option<u64>) -> Fleet {
        let shards: Vec<Server> = (0..size)
            .map(|i| {
                Server::start(&ServeOptions {
                    shard: Some(format!("shard-{i}")),
                    workers: 2,
                    ..ServeOptions::default()
                })
                .expect("start shard")
            })
            .collect();
        let mut addrs: Vec<String> = shards.iter().map(|s| s.local_addr().to_string()).collect();
        let proxy = if plan.is_empty() {
            None
        } else {
            let proxy = ChaosProxy::start(shards[0].local_addr(), plan).expect("start proxy");
            addrs[0] = proxy.local_addr().to_string();
            Some(proxy)
        };
        let router = Router::start(&RouteOptions {
            shards: addrs,
            retries: 6,
            backoff_ms: 5,
            hedge_ms,
            breaker_cooldown_ms: 150,
            probe_interval_ms: 20,
            ..RouteOptions::default()
        })
        .expect("start router");
        Fleet {
            shards,
            proxy,
            router,
        }
    }

    /// One connection, the whole campaign, one normalized line each.
    fn run_campaign(&self) -> Vec<String> {
        let stream = TcpStream::connect(self.router.local_addr()).expect("connect router");
        let _ = stream.set_nodelay(true);
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        let mut responses = Vec::new();
        for index in 0..CAMPAIGN_LEN {
            writer
                .write_all(format!("{}\n", request_for(index)).as_bytes())
                .expect("write request");
            writer.flush().expect("flush");
            let mut line = String::new();
            let n = reader.read_line(&mut line).expect("read response");
            assert!(n > 0, "router closed mid-campaign at request {index}");
            responses.push(normalize(line.trim_end()));
        }
        responses
    }

    fn router_stats(&self) -> Json {
        let stream = TcpStream::connect(self.router.local_addr()).expect("connect router");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writer.write_all(b"{\"kind\": \"stats\"}\n").expect("write");
        writer.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read stats");
        parse_json(line.trim_end()).expect("stats is json")
    }

    fn shutdown(self) {
        if let Some(proxy) = self.proxy {
            proxy.stop();
        }
        self.router.request_shutdown();
        assert!(self.router.drain(), "router must drain cleanly");
        for shard in self.shards {
            shard.drain();
        }
    }
}

fn num(value: &Json) -> i64 {
    match value {
        Json::Num(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> &'a Json {
    match obj {
        Json::Obj(fields) => fields.get(key).unwrap_or_else(|| panic!("missing {key}")),
        other => panic!("expected object, got {other:?}"),
    }
}

/// The shard-0 entry of the router's per-shard stats array (the one
/// behind the chaos proxy).
fn shard0_stats(stats: &Json) -> &Json {
    match field(stats, "shards") {
        Json::Arr(items) => &items[0],
        other => panic!("expected shards array, got {other:?}"),
    }
}

fn assert_no_unavailable(responses: &[String]) {
    for (i, line) in responses.iter().enumerate() {
        assert!(
            !line.contains("\"status\": \"unavailable\""),
            "request {i} was dropped on the floor: {line}"
        );
    }
}

/// The fault matrix: every fault kind, firing both early (while the
/// first routed requests are still queueing) and late (mid-campaign,
/// while earlier analyses are in flight). Each cell must be
/// byte-identical to the fault-free single-shard baseline.
#[test]
fn responses_are_byte_identical_under_fault_matrix() {
    let baseline_fleet = Fleet::start(1, ChaosPlan::default(), None);
    let baseline = baseline_fleet.run_campaign();
    baseline_fleet.shutdown();
    assert_eq!(baseline.len(), CAMPAIGN_LEN);
    assert_no_unavailable(&baseline);

    let plans = [
        "kill@0:400",
        "kill@2",
        "stall@0:120",
        "stall@2:120",
        "drop@0",
        "drop@2",
        "torn@0",
        "torn@2",
    ];
    for spec in plans {
        let plan = parse_chaos_plan(spec).expect("valid plan");
        let fleet = Fleet::start(3, plan, None);
        let responses = fleet.run_campaign();
        let faulted = fleet.proxy.as_ref().expect("proxy").work_requests_seen();
        fleet.shutdown();
        assert_eq!(
            responses, baseline,
            "fault plan `{spec}` changed response bytes (proxy saw {faulted} work requests)"
        );
        assert_no_unavailable(&responses);
    }
}

/// A killed-then-revived shard must be re-admitted through the
/// breaker: the router's stats have to show at least one half-open
/// probe and the breaker back in `closed` for shard 0.
#[test]
fn breaker_readmits_revived_shard_via_half_open_probe() {
    let plan = parse_chaos_plan("kill@0:300").expect("valid plan");
    let fleet = Fleet::start(3, plan, None);
    let responses = fleet.run_campaign();
    assert_eq!(responses.len(), CAMPAIGN_LEN);
    assert_no_unavailable(&responses);

    // The campaign triggered the kill; now the health prober has to
    // trip the breaker on the dead proxy port, cool down, half-open
    // probe, fail or succeed depending on the revival clock, and
    // eventually close again once the proxy serves traffic anew.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut readmitted = false;
    while Instant::now() < deadline {
        let stats = fleet.router_stats();
        let shard0 = shard0_stats(&stats);
        let probes = num(field(shard0, "half_open_probes"));
        let breaker = field(shard0, "breaker");
        if probes >= 1 && matches!(breaker, Json::Str(s) if s == "closed") {
            readmitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        readmitted,
        "breaker never re-admitted the revived shard: {:?}",
        fleet.router_stats()
    );

    // And the re-admitted shard must actually serve again: a fresh
    // campaign with the fault spent must route some work to shard 0.
    let before = num(field(shard0_stats(&fleet.router_stats()), "served"));
    let responses = fleet.run_campaign();
    assert_no_unavailable(&responses);
    let after = num(field(shard0_stats(&fleet.router_stats()), "served"));
    assert!(
        after > before,
        "revived shard served nothing ({before} -> {after})"
    );
    fleet.shutdown();
}

/// With hedging enabled, a stalled shard must not cost the client the
/// stall: the router races a second replica and takes its answer.
#[test]
fn hedging_wins_against_a_stalled_shard() {
    let plan = parse_chaos_plan("stall@0:1500").expect("valid plan");
    let fleet = Fleet::start(3, plan, Some(40));
    let begin = Instant::now();
    let responses = fleet.run_campaign();
    let elapsed = begin.elapsed();
    assert_eq!(responses.len(), CAMPAIGN_LEN);
    assert_no_unavailable(&responses);
    let stats = fleet.router_stats();
    let hedge_wins = num(field(&stats, "hedge_wins"));
    assert!(
        hedge_wins >= 1,
        "expected at least one hedge win, stats: {stats:?}"
    );
    assert!(
        elapsed < Duration::from_millis(1500),
        "campaign waited out the stall ({elapsed:?}) instead of hedging past it"
    );
    fleet.shutdown();
}

/// An exhausted end-to-end budget must short-circuit to the typed
/// `unavailable` *before* an attempt is rendered — a `"deadline_ms": 0`
/// frame (an instantly-degrading analysis the client never asked for)
/// must never reach a shard. The stall drains the budget
/// deterministically: the first attempt burns ~100 ms against the
/// stalled proxy, and the retry backoff (huge on purpose) is capped at
/// the remaining budget, so the second attempt wakes with exactly 0 ms
/// left.
#[test]
fn exhausted_budget_is_never_dispatched_as_a_zero_deadline_frame() {
    let shard = Server::start(&ServeOptions {
        shard: Some("shard-0".to_string()),
        ..ServeOptions::default()
    })
    .expect("start shard");
    let plan = parse_chaos_plan("stall@0:400").expect("valid plan");
    let proxy = ChaosProxy::start(shard.local_addr(), plan).expect("start proxy");
    let router = Router::start(&RouteOptions {
        shards: vec![proxy.local_addr().to_string()],
        retries: 2,
        backoff_ms: 10_000,
        deadline_ms: Some(250),
        attempt_timeout_ms: 100,
        probe_interval_ms: 60_000,
        ..RouteOptions::default()
    })
    .expect("start router");

    let stream = TcpStream::connect(router.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(format!("{}\n", request_for(0)).as_bytes())
        .expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"status\": \"unavailable\""),
        "expected typed unavailable, got: {line}"
    );
    assert!(
        line.contains("deadline exhausted"),
        "the refusal must name the exhausted budget: {line}"
    );

    // Wait out the stall so the first (legitimate) attempt has been
    // forwarded and recorded before asserting over the frame log.
    std::thread::sleep(Duration::from_millis(600));
    let frames = proxy.work_frames();
    assert!(
        !frames.is_empty(),
        "the pre-stall attempt should have reached the shard"
    );
    for frame in &frames {
        assert!(
            !frame.contains("\"deadline_ms\": 0,") && !frame.contains("\"deadline_ms\": 0}"),
            "a zero-deadline frame was dispatched to the shard: {frame}"
        );
    }

    router.request_shutdown();
    router.drain();
    proxy.stop();
    shard.drain();
}

/// When no replica can answer, the router must degrade to a *typed*
/// unavailable response — a parseable frame naming the exhausted
/// budget, never a hang or a dropped connection.
#[test]
fn all_shards_dead_yields_typed_unavailable() {
    // Bind-then-drop two listeners to get ports that refuse connections.
    let dead: Vec<String> = (0..2)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            listener.local_addr().expect("addr").to_string()
        })
        .collect();
    let router = Router::start(&RouteOptions {
        shards: dead,
        retries: 1,
        backoff_ms: 1,
        attempt_timeout_ms: 500,
        probe_interval_ms: 60_000,
        ..RouteOptions::default()
    })
    .expect("start router");
    let stream = TcpStream::connect(router.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer
        .write_all(format!("{}\n", request_for(0)).as_bytes())
        .expect("write");
    writer.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    assert!(
        line.contains("\"status\": \"unavailable\""),
        "expected typed unavailable, got: {line}"
    );
    assert!(
        line.contains("no replica answered"),
        "unavailable frame must explain itself: {line}"
    );
    router.request_shutdown();
    router.drain();
}
