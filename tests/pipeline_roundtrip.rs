//! Cross-crate round-trip tests: frontend → pretty-printer → frontend,
//! and consistency between the analysis stack's views of one program.

use leakchecker_benchsuite::SplitMix64;
use leakchecker_callgraph::{Algorithm, CallGraph};
use leakchecker_ir::pretty::print_program;

const SAMPLE: &str = r#"
class Node { Node next; int tag; }
class Builder {
    Node build(int n) {
        Node head = null;
        int i = 0;
        while (i < n) {
            Node fresh = new Node();
            fresh.tag = i;
            fresh.next = head;
            head = fresh;
            i = i + 1;
        }
        return head;
    }
}
class Main {
    static void main() {
        Builder b = new Builder();
        Node list = b.build(10);
        int total = 0;
        while (list != null) {
            total = total + list.tag;
            list = list.next;
        }
    }
}
"#;

#[test]
fn pretty_printed_program_recompiles() {
    let unit = leakchecker_frontend::compile(SAMPLE).unwrap();
    let printed = print_program(&unit.program);
    // The printer emits the structural subset the parser accepts, modulo
    // comments (site ids); a second compile must succeed and agree on
    // entity counts.
    let reparsed = leakchecker_frontend::compile(&printed)
        .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
    assert_eq!(
        unit.program.classes().len(),
        reparsed.program.classes().len()
    );
    assert_eq!(
        unit.program.methods().len(),
        reparsed.program.methods().len()
    );
    assert_eq!(unit.program.allocs().len(), reparsed.program.allocs().len());
    assert_eq!(unit.program.loops().len(), reparsed.program.loops().len());
    // Statement counts differ slightly: re-parsing default-initializes the
    // printed declarations; the heap-relevant entity counts must agree.
}

#[test]
fn callgraph_and_interpreter_agree_on_reachability() {
    // Every method the interpreter actually executes must be reachable in
    // the RTA call graph (a dynamic-vs-static differential check).
    let unit = leakchecker_frontend::compile(SAMPLE).unwrap();
    let cg = CallGraph::build(&unit.program, Algorithm::Rta);
    let exec =
        leakchecker_interp::run(&unit.program, leakchecker_interp::Config::default()).unwrap();
    // The interpreter ran to completion; verify the call graph covers the
    // methods with observable effects (all allocation sites' methods).
    for alloc in unit.program.allocs() {
        assert!(
            cg.is_reachable(alloc.method),
            "allocating method {} not reachable",
            unit.program.qualified_name(alloc.method)
        );
    }
    assert!(exec.steps > 0);
}

/// Generated programs round-trip through the pretty printer, over a
/// deterministic sweep of generator seeds.
#[test]
fn generated_programs_roundtrip() {
    let mut rng = SplitMix64::new(0x5EED_0001);
    for _ in 0..24 {
        let seed = rng.gen_range(0, 5000);
        let generated = leakchecker_benchsuite::generate(leakchecker_benchsuite::GenConfig {
            handlers: 4,
            leak_percent: 30,
            padding_methods: 1,
            seed,
        });
        let unit = leakchecker_frontend::compile(&generated.source).unwrap();
        let printed = print_program(&unit.program);
        let reparsed =
            leakchecker_frontend::compile(&printed).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(unit.program.allocs().len(), reparsed.program.allocs().len());
        assert_eq!(
            unit.program.methods().len(),
            reparsed.program.methods().len()
        );
    }
}
