//! End-to-end integration test for the paper's Figure 1 example: the
//! SPECjbb-style transaction loop in which each `Order` is saved both in
//! `Transaction.curr` (properly read back) and in a per-customer order
//! array (never read back — the leak).

use leakchecker::{check, CheckTarget, DetectorConfig};
use leakchecker_effects::Era;
use leakchecker_interp::{compute_ground_truth, run, Config, NonDetPolicy};

const FIGURE1: &str = r#"
class Order { int custId; }

class Customer {
    Order[] orders = new Order[64];
    int n;
    void addOrder(Order y) {
        Order[] arr = this.orders;
        arr[this.n] = y;
        this.n = this.n + 1;
    }
}

class Transaction {
    Customer[] customers = new Customer[4];
    Order curr;
    Transaction() {
        int i = 0;
        while (i < 4) {
            Customer newCust = new Customer();
            Customer[] cs = this.customers;
            cs[i] = newCust;
            i = i + 1;
        }
    }
    void process(Order p) {
        this.curr = p;
        Customer[] custs = this.customers;
        Customer c = custs[p.custId];
        c.addOrder(p);
    }
    void display() {
        Order o = this.curr;
        if (o != null) {
            this.curr = null;
        }
    }
}

class Main {
    static void main() {
        Transaction t = new Transaction();
        @check while (nondet()) {
            t.display();
            Order order = new Order();
            t.process(order);
        }
    }
}
"#;

#[test]
fn figure1_static_detection() {
    let unit = leakchecker_frontend::compile(FIGURE1).unwrap();
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .unwrap();

    // Exactly the Order site is reported.
    assert_eq!(result.reports.len(), 1);
    let report = &result.reports[0];
    assert_eq!(report.describe, "new Order");
    // The Order escapes through two edges; only the array edge lacks a
    // matching flows-in, and the report pinpoints it, as in Section 2.
    // (The site-level ERA joins the flowed-back curr occurrence with the
    // never-read array occurrence, so it is f̂ or ⊤̂ depending on which
    // dominates; both classify the site as escaping.)
    assert!(report.era == Era::Future || report.era == Era::Top);
    assert_eq!(report.edges.len(), 1);
    assert_eq!(result.program.field(report.edges[0].field).name, "elem");
}

#[test]
fn figure1_concrete_ground_truth_agrees() {
    let unit = leakchecker_frontend::compile(FIGURE1).unwrap();
    let exec = run(
        &unit.program,
        Config {
            tracked_loop: Some(unit.checked_loops[0]),
            nondet: NonDetPolicy::Always(true),
            max_tracked_iterations: Some(40),
            ..Config::default()
        },
    )
    .unwrap();
    let gt = compute_ground_truth(&exec.heap, &exec.effects);
    // Concretely, the Order instances leak (pinned by the order arrays).
    let order_site = unit
        .program
        .allocs()
        .iter()
        .enumerate()
        .find(|(_, a)| a.describe == "new Order")
        .map(|(i, _)| leakchecker_ir::AllocSite::from_index(i))
        .unwrap();
    assert!(gt.leaked_sites().contains(&order_site));
    // Most of the 40 instances are stuck (the current one may not be).
    assert!(gt.instances_of(order_site) >= 38);
}

#[test]
fn figure1_fixed_version_is_quiet() {
    // The fix: the customer order array is pruned... modeled simply by
    // the processing not archiving the order at all.
    let fixed = FIGURE1.replace("c.addOrder(p);", "");
    let unit = leakchecker_frontend::compile(&fixed).unwrap();
    let result = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .unwrap();
    assert!(
        result.reports.is_empty(),
        "fixed program must be quiet: {:?}",
        result
            .reports
            .iter()
            .map(|r| r.describe.clone())
            .collect::<Vec<_>>()
    );
}
