//! Lattice-law property battery for the effects domain.
//!
//! The parallel Jacobi rounds of the effects fixpoint (see
//! `crates/effects/src/analysis.rs`) merge per-region deltas with
//! `join_env`, replay flow-back heap rewrites concurrently, and age the
//! snapshot once per round. Each of those steps is only sound because
//! the underlying operators satisfy algebraic laws: the joins form a
//! semilattice, aging is monotone, and the flow-back refinement is an
//! idempotent rewrite that never leaves the escape chain. This suite
//! checks every law on SplitMix64-driven random values so a future
//! domain change that silently breaks a precondition of the parallel
//! merge fails here, with the seed printed in the assertion.

use leakchecker_benchsuite::SplitMix64;
use leakchecker_effects::{age_env, age_heap_map, gen_of, join_env, Env, Era, Gen, HeapKey};
use leakchecker_effects::{AbsType, TypeKey, Val};
use leakchecker_ir::ids::{AllocSite, FieldId};
use std::collections::BTreeMap;

const BOUND: usize = 4;
const ERAS: [Era; 4] = [Era::Outside, Era::Current, Era::Future, Era::Top];

fn random_era(rng: &mut SplitMix64) -> Era {
    ERAS[rng.gen_range(0, 4) as usize]
}

/// A random `Val`: `⊥` and `⊤` with some probability, else a type set
/// built by joining singletons (which keeps the representation
/// invariant: non-empty, deduplicated keys, size ≤ bound).
fn random_val(rng: &mut SplitMix64) -> Val {
    match rng.gen_range(0, 10) {
        0 => Val::Bottom,
        1 => Val::Top,
        _ => {
            let mut val = Val::Bottom;
            for _ in 0..rng.gen_range(1, 4) {
                let key = if rng.gen_range(0, 8) == 0 {
                    TypeKey::Globals
                } else {
                    TypeKey::Site(AllocSite(rng.gen_range(0, 6) as u32))
                };
                let ty = AbsType::new(key, random_era(rng));
                val = val.join(&Val::one(ty), BOUND);
            }
            val
        }
    }
}

fn random_env(rng: &mut SplitMix64, nlocals: usize) -> Env {
    Env {
        locals: (0..nlocals).map(|_| random_val(rng)).collect(),
        ret: random_val(rng),
    }
}

fn random_heap(rng: &mut SplitMix64) -> BTreeMap<HeapKey, Val> {
    let mut heap = BTreeMap::new();
    for _ in 0..rng.gen_range(0, 8) {
        let key = (
            TypeKey::Site(AllocSite(rng.gen_range(0, 4) as u32)),
            gen_of(random_era(rng)),
            FieldId(rng.gen_range(0, 3) as u32),
        );
        heap.insert(key, random_val(rng));
    }
    heap
}

/// `a ⊑ b` in the bounded value lattice.
fn val_le(a: &Val, b: &Val) -> bool {
    a.join(b, BOUND) == *b
}

fn env_le(a: &Env, b: &Env) -> bool {
    join_env(a, b, BOUND) == *b
}

/// Pointwise heap order, absent cells reading as `⊥`.
fn heap_le(a: &BTreeMap<HeapKey, Val>, b: &BTreeMap<HeapKey, Val>) -> bool {
    a.iter()
        .all(|(k, v)| val_le(v, b.get(k).unwrap_or(&Val::Bottom)))
}

/// Pointwise heap join (what the sequential walk computes cell by cell).
fn heap_join(a: &BTreeMap<HeapKey, Val>, b: &BTreeMap<HeapKey, Val>) -> BTreeMap<HeapKey, Val> {
    let mut out = a.clone();
    for (k, v) in b {
        let entry = out.entry(*k).or_default();
        *entry = entry.join(v, BOUND);
    }
    out
}

#[test]
fn val_join_is_a_bounded_semilattice() {
    let mut rng = SplitMix64::new(0x1A77);
    for case in 0..2_000 {
        let (a, b, c) = (
            random_val(&mut rng),
            random_val(&mut rng),
            random_val(&mut rng),
        );
        assert_eq!(a.join(&a, BOUND), a, "idempotent, case {case}: {a}");
        assert_eq!(
            a.join(&b, BOUND),
            b.join(&a, BOUND),
            "commutative, case {case}: {a} ⊔ {b}"
        );
        // Associative even with the collapse-to-⊤ widening: a grouping
        // can only collapse when the total key union exceeds the bound,
        // and ⊤ is absorbing, so every grouping agrees.
        assert_eq!(
            a.join(&b, BOUND).join(&c, BOUND),
            a.join(&b.join(&c, BOUND), BOUND),
            "associative, case {case}: {a}, {b}, {c}"
        );
        // ⊥ is the unit, ⊤ absorbs.
        assert_eq!(a.join(&Val::Bottom, BOUND), a, "case {case}");
        assert!(a.join(&Val::Top, BOUND).is_top(), "case {case}");
        // Both arguments are below the join; join is the least thing
        // monotonicity needs.
        let ab = a.join(&b, BOUND);
        assert!(val_le(&a, &ab) && val_le(&b, &ab), "case {case}");
        if val_le(&a, &b) {
            assert!(
                val_le(&a.join(&c, BOUND), &b.join(&c, BOUND)),
                "join not monotone, case {case}: {a} ⊑ {b}, c = {c}"
            );
        }
    }
}

#[test]
fn env_join_is_a_semilattice_and_aging_is_monotone() {
    let mut rng = SplitMix64::new(0x2B88);
    for case in 0..1_000 {
        let nlocals = rng.gen_range(0, 6) as usize;
        let a = random_env(&mut rng, nlocals);
        let b = random_env(&mut rng, nlocals);
        let c = random_env(&mut rng, nlocals);
        assert_eq!(join_env(&a, &a, BOUND), a, "idempotent, case {case}");
        assert_eq!(
            join_env(&a, &b, BOUND),
            join_env(&b, &a, BOUND),
            "commutative, case {case}"
        );
        assert_eq!(
            join_env(&join_env(&a, &b, BOUND), &c, BOUND),
            join_env(&a, &join_env(&b, &c, BOUND), BOUND),
            "associative, case {case}"
        );
        let ab = join_env(&a, &b, BOUND);
        assert!(env_le(&a, &ab) && env_le(&b, &ab), "case {case}");
        if env_le(&a, &b) {
            assert!(
                env_le(&join_env(&a, &c, BOUND), &join_env(&b, &c, BOUND)),
                "join_env not monotone, case {case}"
            );
            assert!(
                env_le(&age_env(&a), &age_env(&b)),
                "age_env not monotone, case {case}: {a:?} ⊑ {b:?}"
            );
        }
    }
}

#[test]
fn heap_aging_is_monotone_and_commutes_with_join() {
    let mut rng = SplitMix64::new(0x3C99);
    for case in 0..1_000 {
        let a = random_heap(&mut rng);
        let b = random_heap(&mut rng);
        if heap_le(&a, &b) {
            assert!(
                heap_le(
                    &age_heap_map(a.clone(), BOUND),
                    &age_heap_map(b.clone(), BOUND)
                ),
                "age_heap_map not monotone, case {case}: {a:?} ⊑ {b:?}"
            );
        }
        // Aging distributes over the pointwise join: merging two region
        // heaps and then aging equals aging each and merging. This is
        // what lets the round loop age once, up front, rather than
        // per-region.
        assert_eq!(
            age_heap_map(heap_join(&a, &b), BOUND),
            heap_join(
                &age_heap_map(a.clone(), BOUND),
                &age_heap_map(b.clone(), BOUND)
            ),
            "aging does not distribute over join, case {case}: {a:?}, {b:?}"
        );
        // Aging never produces a fresh-generation cell.
        for ((_, gen, _), _) in age_heap_map(a, BOUND) {
            assert_ne!(gen, Gen::Fresh, "case {case}");
        }
    }
}

#[test]
fn flow_back_is_idempotent_inside_monotone_and_stays_in_the_escape_chain() {
    for a in ERAS {
        assert_eq!(
            a.flow_back().flow_back(),
            a.flow_back(),
            "flow_back not idempotent at {a}"
        );
        // The refinement proves flow-back; it must never forget escape
        // or invent one: `persists` and `is_inside` are both preserved,
        // so a concurrent region replaying the rewrite on an
        // already-rewritten cell changes nothing.
        assert_eq!(a.flow_back().persists(), a.persists(), "at {a}");
        assert_eq!(a.flow_back().is_inside(), a.is_inside(), "at {a}");
        for b in ERAS {
            // Monotone on the inside chain (0̂ is incomparable to the
            // inside values in well-formed states; the conservative
            // total join puts it below ⊤̂ only).
            if a.is_inside() && b.is_inside() && a.le(b) {
                assert!(
                    a.flow_back().le(b.flow_back()),
                    "flow_back not monotone at {a} ⊑ {b}"
                );
            }
        }
    }
}

#[test]
fn val_aging_is_monotone_and_kills_persistence_refinements() {
    let mut rng = SplitMix64::new(0x4DAA);
    for case in 0..2_000 {
        let a = random_val(&mut rng);
        let b = random_val(&mut rng);
        if val_le(&a, &b) {
            assert!(
                val_le(&a.age(), &b.age()),
                "Val::age not monotone, case {case}: {a} ⊑ {b}"
            );
        }
        // After aging, everything that exists persists: the next
        // iteration's loads may observe any surviving object.
        if !a.is_bottom() {
            assert!(a.age().may_persist(), "case {case}: {a}");
        }
    }
}
