//! Differential determinism tests for the parallel detection engine:
//! a `jobs = N` run must produce byte-identical reports and statistics
//! (timings excluded) to the sequential run, on every Table-1 subject
//! and on generated programs.

use leakchecker::{check, render_all, AnalysisResult, DetectorConfig, RunStats};
use leakchecker_benchsuite::{all_subjects, generate, GenConfig};

/// Everything comparable about a run: the rendered reports (site, ERA,
/// edges, contexts, names — the full user-visible output) plus the
/// timing-free statistics.
fn fingerprint(result: &AnalysisResult) -> String {
    let RunStats {
        methods,
        statements,
        loop_objects,
        leaking_sites,
        flow_edges,
        candidate_sites,
        refuted_candidates,
        exhausted_queries,
        retries,
        fallbacks,
        quarantined,
        deadline_hits,
        degraded_reports,
        batched_queries,
        query_batches,
        effects_rounds,
        effects_truncated,
        cache_hits,
        cache_misses,
        cache_invalidated,
        cache_corrupt_recovered,
        // Excluded on purpose: wall-clock and thread count vary per run,
        // and the effects region width depends on jobs and machine width.
        time_secs: _,
        phases: _,
        jobs: _,
        effects_regions: _,
    } = result.stats;
    format!(
        "methods={methods} statements={statements} loop_objects={loop_objects} \
         leaking_sites={leaking_sites} flow_edges={flow_edges} \
         candidate_sites={candidate_sites} refuted={refuted_candidates} \
         exhausted={exhausted_queries} retries={retries} fallbacks={fallbacks} \
         quarantined={quarantined} deadline_hits={deadline_hits} \
         degraded={degraded_reports} batched={batched_queries} \
         batches={query_batches} effects_rounds={effects_rounds} \
         effects_truncated={effects_truncated} cache_hits={cache_hits} \
         cache_misses={cache_misses} cache_invalidated={cache_invalidated} \
         cache_corrupt_recovered={cache_corrupt_recovered}\n{}",
        render_all(&result.program, &result.reports)
    )
}

#[test]
fn all_subjects_are_deterministic_under_parallelism() {
    for subject in all_subjects() {
        let unit = subject.compile();
        let run = |jobs: usize| {
            let config = DetectorConfig {
                jobs,
                ..subject.detector_config()
            };
            check(&unit.program, subject.target(&unit), config)
                .unwrap_or_else(|e| panic!("{}: {e}", subject.name))
        };
        let sequential = fingerprint(&run(1));
        for jobs in [2, 4, 8] {
            assert_eq!(
                sequential,
                fingerprint(&run(jobs)),
                "{}: jobs={jobs} diverged from sequential",
                subject.name
            );
        }
    }
}

#[test]
fn generated_programs_are_deterministic_under_parallelism() {
    for handlers in [8, 32, 64] {
        let generated = generate(GenConfig {
            handlers,
            leak_percent: 40,
            padding_methods: 2,
            seed: 0xD15EA5E,
        });
        let unit = leakchecker_frontend::compile(&generated.source).expect("generated compiles");
        let target = leakchecker::CheckTarget::Loop(unit.checked_loops[0]);
        let run = |jobs: usize| {
            let config = DetectorConfig {
                jobs,
                ..DetectorConfig::default()
            };
            check(&unit.program, target, config).expect("analysis runs")
        };
        let sequential = fingerprint(&run(1));
        for jobs in [3, 7] {
            assert_eq!(
                sequential,
                fingerprint(&run(jobs)),
                "{handlers} handlers: jobs={jobs} diverged from sequential"
            );
        }
    }
}
