//! Edge-case integration tests for the detector: inheritance and virtual
//! dispatch, nested loops, recursion, statics, and configuration corners.

use leakchecker::{check, CheckTarget, DetectorConfig};
use leakchecker_frontend::compile;

fn run(src: &str) -> leakchecker::AnalysisResult {
    run_with(src, DetectorConfig::default())
}

fn run_with(src: &str, config: DetectorConfig) -> leakchecker::AnalysisResult {
    let unit = compile(src).unwrap();
    check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        config,
    )
    .unwrap()
}

fn reported(result: &leakchecker::AnalysisResult) -> Vec<String> {
    result.reports.iter().map(|r| r.describe.clone()).collect()
}

#[test]
fn leak_through_virtual_override_is_found() {
    // The store into the outside sink happens in an override selected by
    // dynamic dispatch; the declared type's method is harmless.
    let result = run("class Sink { Object kept; }
         class Handler {
           Sink sink;
           void handle(Object o) { }
         }
         class Keeping extends Handler {
           void handle(Object o) {
             Sink s = this.sink;
             s.kept = o;
           }
         }
         class Main {
           static void main() {
             Sink sink = new Sink();
             Keeping k = new Keeping();
             k.sink = sink;
             Handler h = k;
             @check while (nondet()) {
               Object item = new Object();
               h.handle(item);
             }
           }
         }");
    assert_eq!(reported(&result), vec!["new Object"]);
}

#[test]
fn nested_inner_loop_objects_belong_to_outer_iteration() {
    // Objects allocated by an inner loop escape the designated outer loop:
    // they must be reported; the paper's formulation tracks only the
    // designated loop.
    let result = run("class Batch { Item[] slots = new Item[1024]; int n; }
         class Item { }
         class Main {
           static void main() {
             Batch batch = new Batch();
             @check while (nondet()) {
               int i = 0;
               while (i < 8) {
                 Item it = new Item();
                 Item[] arr = batch.slots;
                 arr[batch.n] = it;
                 batch.n = batch.n + 1;
                 i = i + 1;
               }
             }
           }
         }");
    assert_eq!(reported(&result), vec!["new Item"]);
}

#[test]
fn iteration_local_inner_loop_structure_is_quiet() {
    let result = run("class Node { Node next; }
         class Main {
           static void main() {
             @check while (nondet()) {
               Node head = null;
               int i = 0;
               while (i < 8) {
                 Node n = new Node();
                 n.next = head;
                 head = n;
                 i = i + 1;
               }
             }
           }
         }");
    assert!(reported(&result).is_empty(), "{:?}", reported(&result));
}

#[test]
fn recursive_escape_is_still_covered() {
    // The escape happens through a recursive helper; inlining cuts the
    // recursion but the first unrolling already sees the store.
    let result = run("class Sink { Object kept; }
         class Main {
           static void save(Sink s, Object o, int depth) {
             if (depth > 0) {
               Main.save(s, o, depth - 1);
             } else {
               s.kept = o;
             }
           }
           static void main() {
             Sink sink = new Sink();
             @check while (nondet()) {
               Object item = new Object();
               Main.save(sink, item, 3);
             }
           }
         }");
    assert_eq!(reported(&result), vec!["new Object"]);
}

#[test]
fn static_sink_and_pivot_interaction() {
    let src = "
         class Wrapper { Object inner; }
         class Registry { static Wrapper last; }
         class Main {
           static void main() {
             @check while (nondet()) {
               Wrapper w = new Wrapper();
               w.inner = new Object();
               Registry.last = w;
             }
           }
         }";
    let pivot = run(src);
    assert_eq!(reported(&pivot), vec!["new Wrapper"], "root only");
    let full = run_with(
        src,
        DetectorConfig {
            pivot_mode: false,
            ..DetectorConfig::default()
        },
    );
    assert_eq!(full.reports.len(), 2);
}

#[test]
fn overwritten_local_only_retention_is_not_reported() {
    // A conditional assignment keeps at most one old instance alive via a
    // local: ERA may be ⊤̂ but there is no flows-out, hence no report.
    let result = run("class Item { }
         class Main {
           static void main() {
             Item keep = null;
             @check while (nondet()) {
               Item fresh = new Item();
               if (nondet()) {
                 keep = fresh;
               }
             }
           }
         }");
    assert!(reported(&result).is_empty(), "{:?}", reported(&result));
}

#[test]
fn region_and_loop_targets_agree_on_equivalent_programs() {
    // The same body checked as an explicit loop and as a region must
    // produce the same site report.
    let loop_version = run("class Sink { Object kept; }
         class Main {
           static void main() {
             Sink s = new Sink();
             @check while (nondet()) {
               Object o = new Object();
               s.kept = o;
             }
           }
         }");
    let region_unit = compile(
        "class Sink { Object kept; }
         class Worker {
           Sink s = new Sink();
           @region void step() {
             Object o = new Object();
             Sink sink = this.s;
             sink.kept = o;
           }
         }
         class Main { static void main() { } }",
    )
    .unwrap();
    let region_version = check(
        &region_unit.program,
        CheckTarget::Region(region_unit.region_methods[0]),
        DetectorConfig::default(),
    )
    .unwrap();
    assert_eq!(reported(&loop_version), vec!["new Object"]);
    assert_eq!(reported(&region_version), vec!["new Object"]);
}

#[test]
fn multiple_checked_loops_analyzed_independently() {
    let unit = compile(
        "class Sink { Object kept; }
         class Main {
           static void main() {
             Sink s = new Sink();
             @check while (nondet()) {
               Object leaky = new Object();
               s.kept = leaky;
             }
             @check while (nondet()) {
               Object localOnly = new Object();
             }
           }
         }",
    )
    .unwrap();
    assert_eq!(unit.checked_loops.len(), 2);
    let first = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[0]),
        DetectorConfig::default(),
    )
    .unwrap();
    let second = check(
        &unit.program,
        CheckTarget::Loop(unit.checked_loops[1]),
        DetectorConfig::default(),
    )
    .unwrap();
    assert_eq!(first.reports.len(), 1);
    assert!(second.reports.is_empty());
}

#[test]
fn cha_and_rta_callgraphs_both_work() {
    let src = "
         class Sink { Object kept; }
         class Main {
           static void main() {
             Sink s = new Sink();
             @check while (nondet()) {
               Object o = new Object();
               s.kept = o;
             }
           }
         }";
    for algorithm in [
        leakchecker_callgraph::Algorithm::Rta,
        leakchecker_callgraph::Algorithm::Cha,
    ] {
        let result = run_with(
            src,
            DetectorConfig {
                callgraph: algorithm,
                ..DetectorConfig::default()
            },
        );
        assert_eq!(reported(&result), vec!["new Object"], "{algorithm:?}");
    }
}

#[test]
fn escape_established_before_designated_loop_is_outside() {
    // Objects stored into the sink *before* the loop are outside objects:
    // nothing inside the loop escapes, nothing is reported.
    let result = run("class Sink { Object kept; }
         class Main {
           static void main() {
             Sink s = new Sink();
             Object setup = new Object();
             s.kept = setup;
             @check while (nondet()) {
               Object probe = s.kept;
             }
           }
         }");
    assert!(reported(&result).is_empty());
}
